//! Minimal machine-readable benchmark summaries.
//!
//! Perf-trajectory benches (`kernel_microbench`, `parallel_speedup`)
//! emit a `BENCH_*.json` next to their human-readable tables so CI and
//! future sessions can diff numbers across PRs without scraping stdout.
//! The format is deliberately flat — one object with a `bench` name and
//! a `rows` array of string/number fields — and the writer is
//! dependency-free (no serde in this offline workspace).

use std::fmt::Write as _;
use std::path::Path;

/// One field of a summary row: a label plus a string or numeric value.
#[derive(Debug, Clone)]
pub enum JsonField {
    /// A string-valued field.
    Str(&'static str, String),
    /// A numeric field (non-finite values are serialized as `null`).
    Num(&'static str, f64),
}

/// Serializes `rows` as
/// `{"bench": name, "cpu": {...}, "rows": [{...}, ...]}` — the `cpu`
/// object ([`crate::cpu::CpuReport`]) makes every summary
/// self-describing about the host (core count, SIMD features, and the
/// `MIRAGE_SIMD` setting in effect).
pub fn to_json(bench: &str, rows: &[Vec<JsonField>]) -> String {
    let mut out = String::new();
    let _ = write!(
        out,
        "{{\n  \"bench\": \"{}\",\n  \"cpu\": {},\n  \"rows\": [",
        escape(bench),
        crate::cpu::CpuReport::detect().to_json_object()
    );
    for (i, row) in rows.iter().enumerate() {
        let _ = write!(out, "{}\n    {{", if i == 0 { "" } else { "," });
        for (j, field) in row.iter().enumerate() {
            let sep = if j == 0 { "" } else { ", " };
            match field {
                JsonField::Str(key, value) => {
                    let _ = write!(out, "{sep}\"{}\": \"{}\"", escape(key), escape(value));
                }
                JsonField::Num(key, value) if value.is_finite() => {
                    let _ = write!(out, "{sep}\"{}\": {value}", escape(key));
                }
                JsonField::Num(key, _) => {
                    let _ = write!(out, "{sep}\"{}\": null", escape(key));
                }
            }
        }
        let _ = write!(out, "}}");
    }
    out.push_str("\n  ]\n}\n");
    out
}

/// Writes [`to_json`] output to `path`, logging instead of panicking on
/// I/O failure (benches should still print their tables on read-only
/// filesystems).
pub fn write_summary(path: impl AsRef<Path>, bench: &str, rows: &[Vec<JsonField>]) {
    let path = path.as_ref();
    match std::fs::write(path, to_json(bench, rows)) {
        Ok(()) => println!("\nwrote machine-readable summary to {}", path.display()),
        Err(e) => eprintln!("warning: could not write {}: {e}", path.display()),
    }
}

pub(crate) fn escape(s: &str) -> String {
    s.chars()
        .flat_map(|c| match c {
            '"' => "\\\"".chars().collect::<Vec<_>>(),
            '\\' => "\\\\".chars().collect(),
            '\n' => "\\n".chars().collect(),
            c if (c as u32) < 0x20 => format!("\\u{:04x}", c as u32).chars().collect(),
            c => vec![c],
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serializes_flat_rows() {
        let rows = vec![
            vec![
                JsonField::Str("name", "bfp".into()),
                JsonField::Num("speedup", 3.5),
            ],
            vec![
                JsonField::Str("name", "rns".into()),
                JsonField::Num("speedup", f64::NAN),
            ],
        ];
        let json = to_json("kernels", &rows);
        assert!(json.contains("\"bench\": \"kernels\""));
        assert!(json.contains("\"speedup\": 3.5"));
        assert!(json.contains("\"speedup\": null"));
        // Every summary self-describes the recording host.
        assert!(json.contains("\"cpu\": {\"arch\": "));
        assert!(json.contains("\"cores\": "));
        assert!(json.contains("\"simd_tier\": "));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }

    #[test]
    fn escapes_strings() {
        let rows = vec![vec![JsonField::Str("name", "a\"b\\c\nd".into())]];
        let json = to_json("x", &rows);
        assert!(json.contains("a\\\"b\\\\c\\nd"));
    }
}
