//! Findings and the machine-readable report.

use std::fmt;

/// The rules `mirage-lint` enforces.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Rule {
    /// Rule 1: no floating point inside `region(int_kernel)` regions.
    FloatInKernel,
    /// Rule 2: no allocating calls inside `no_alloc` functions.
    AllocInNoAlloc,
    /// Rule 3: no panicking calls in the serving modules.
    PanicInServing,
    /// Rule 4: engines overriding `prepare` must override the whole
    /// prepared-path surface.
    EngineContract,
    /// Rule 5: crate roots carry the standard forbid/deny block.
    CrateHygiene,
    /// Rule 6: `unsafe` appears only in the allowlisted SIMD kernel
    /// modules, and every unsafe line there carries a `SAFETY:` comment.
    UnsafeConfined,
    /// Malformed or unpaired `mirage-lint:` directives.
    Directive,
}

impl Rule {
    /// The stable rule identifier used in reports and waiver keys.
    pub fn as_str(self) -> &'static str {
        match self {
            Rule::FloatInKernel => "float-in-kernel",
            Rule::AllocInNoAlloc => "alloc-in-no-alloc",
            Rule::PanicInServing => "panic-in-serving",
            Rule::EngineContract => "engine-contract",
            Rule::CrateHygiene => "crate-hygiene",
            Rule::UnsafeConfined => "unsafe-confined",
            Rule::Directive => "directive",
        }
    }

    /// The `allow(...)` waiver key that silences this rule, if any.
    pub fn waiver_key(self) -> Option<&'static str> {
        match self {
            Rule::FloatInKernel => Some("float_ok"),
            Rule::AllocInNoAlloc => Some("alloc_ok"),
            Rule::PanicInServing => Some("panic_ok"),
            Rule::EngineContract => Some("contract_ok"),
            Rule::CrateHygiene => Some("hygiene_ok"),
            Rule::UnsafeConfined => Some("unsafe_ok"),
            Rule::Directive => None,
        }
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One lint finding.
#[derive(Debug, Clone)]
pub struct Finding {
    /// Workspace-relative path of the offending file.
    pub file: String,
    /// 1-based line of the offending token (or item).
    pub line: u32,
    /// The violated rule.
    pub rule: Rule,
    /// Human-readable description.
    pub message: String,
    /// Whether an `allow(...)` waiver with a reason covers the finding.
    pub waived: bool,
    /// The waiver's reason, when waived.
    pub reason: Option<String>,
}

impl Finding {
    /// Creates an active (unwaived) finding.
    pub fn new(file: &str, line: u32, rule: Rule, message: impl Into<String>) -> Self {
        Finding {
            file: file.to_string(),
            line,
            rule,
            message: message.into(),
            waived: false,
            reason: None,
        }
    }
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let status = if self.waived { " (waived)" } else { "" };
        write!(
            f,
            "{}:{}: [{}]{} {}",
            self.file, self.line, self.rule, status, self.message
        )?;
        if let Some(reason) = &self.reason {
            write!(f, " — waiver: {reason}")?;
        }
        Ok(())
    }
}

/// A full lint run over a workspace.
#[derive(Debug, Default)]
pub struct Report {
    /// Workspace root the run was anchored at.
    pub root: String,
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
    /// Every finding, waived ones included.
    pub findings: Vec<Finding>,
}

impl Report {
    /// Findings that are not waived — these fail the build.
    pub fn active(&self) -> impl Iterator<Item = &Finding> {
        self.findings.iter().filter(|f| !f.waived)
    }

    /// Number of active (build-failing) findings.
    pub fn active_count(&self) -> usize {
        self.active().count()
    }

    /// Number of waived findings.
    pub fn waived_count(&self) -> usize {
        self.findings.iter().filter(|f| f.waived).count()
    }

    /// Active findings for one rule (test convenience).
    pub fn active_for(&self, rule: Rule) -> Vec<&Finding> {
        self.active().filter(|f| f.rule == rule).collect()
    }

    /// Serializes the report as JSON (hand-rolled; the workspace has no
    /// serde and takes no new dependencies).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str("  \"version\": 1,\n");
        out.push_str(&format!("  \"root\": {},\n", json_str(&self.root)));
        out.push_str(&format!("  \"files_scanned\": {},\n", self.files_scanned));
        out.push_str(&format!(
            "  \"summary\": {{\"total\": {}, \"active\": {}, \"waived\": {}}},\n",
            self.findings.len(),
            self.active_count(),
            self.waived_count()
        ));
        out.push_str("  \"findings\": [");
        for (i, f) in self.findings.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n    {");
            out.push_str(&format!("\"file\": {}, ", json_str(&f.file)));
            out.push_str(&format!("\"line\": {}, ", f.line));
            out.push_str(&format!("\"rule\": {}, ", json_str(f.rule.as_str())));
            out.push_str(&format!("\"message\": {}, ", json_str(&f.message)));
            out.push_str(&format!("\"waived\": {}, ", f.waived));
            match &f.reason {
                Some(r) => out.push_str(&format!("\"reason\": {}", json_str(r))),
                None => out.push_str("\"reason\": null"),
            }
            out.push('}');
        }
        if !self.findings.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("]\n}\n");
        out
    }
}

/// Escapes a string for JSON.
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_escapes_and_counts() {
        let mut report = Report {
            root: "/tmp/x".into(),
            files_scanned: 2,
            findings: vec![Finding::new("a.rs", 3, Rule::FloatInKernel, "bad \"f64\"")],
        };
        report.findings.push(Finding {
            waived: true,
            reason: Some("ok".into()),
            ..Finding::new("b.rs", 1, Rule::PanicInServing, "unwrap")
        });
        let json = report.to_json();
        assert!(json.contains("\\\"f64\\\""));
        assert!(json.contains("\"active\": 1"));
        assert!(json.contains("\"waived\": 1}"));
        assert_eq!(report.active_count(), 1);
        assert_eq!(report.active_for(Rule::FloatInKernel).len(), 1);
    }
}
