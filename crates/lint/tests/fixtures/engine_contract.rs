//! Fixture: a `GemmEngine` impl overriding `prepare` without the rest
//! of the prepared surface. Expected: exactly 1 active
//! `engine-contract` finding, anchored at the `Partial` impl and naming
//! `gemm_prepared_into` and `prepare_tile`; the `Complete` impl and the
//! non-engine trait must stay silent.
//! Never compiled — consumed via `include_str!` by `rules_fire.rs`.

pub struct Partial;
pub struct Complete;
pub struct Unrelated;

impl GemmEngine for Partial {
    fn name(&self) -> &'static str {
        "partial"
    }
    fn prepare(&self, b: &Tensor) -> Result<PreparedRhs> {
        prepare_impl(b)
    }
    fn gemm_prepared(&self, a: &Tensor, b: &PreparedRhs) -> Result<Tensor> {
        gemm_impl(a, b)
    }
}

impl GemmEngine for Complete {
    fn name(&self) -> &'static str {
        "complete"
    }
    fn prepare(&self, b: &Tensor) -> Result<PreparedRhs> {
        prepare_impl(b)
    }
    fn gemm_prepared(&self, a: &Tensor, b: &PreparedRhs) -> Result<Tensor> {
        gemm_impl(a, b)
    }
    fn gemm_prepared_into(
        &self,
        a: &Tensor,
        b: &PreparedRhs,
        out: &mut Vec<f32>,
    ) -> Result<(usize, usize)> {
        into_impl(a, b, out)
    }
    fn prepare_tile(
        &self,
        whole: &PreparedRhs,
        c0: usize,
        width: usize,
    ) -> Result<Option<PreparedRhs>> {
        tile_impl(whole, c0, width)
    }
}

impl SomeOtherTrait for Unrelated {
    fn prepare(&self) -> u32 {
        0
    }
}
