//! The real workspace must lint clean: zero active findings, and every
//! waiver must carry a reason. This is the tier-1 embodiment of the
//! gate — a contract regression anywhere in the tree fails this test
//! even before CI runs the binary.

use mirage_lint::lint_workspace;
use std::path::Path;

#[test]
fn workspace_has_zero_active_findings() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("workspace root resolves");
    let report = lint_workspace(&root).expect("workspace lints");
    let active: Vec<_> = report.active().collect();
    assert!(
        active.is_empty(),
        "the workspace must lint clean; active findings:\n{}",
        active
            .iter()
            .map(|f| f.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
    for f in &report.findings {
        assert!(
            f.reason.as_deref().is_some_and(|r| !r.trim().is_empty()),
            "waived finding without a reason: {f}"
        );
    }
    assert!(
        report.files_scanned > 100,
        "the walk found suspiciously few files ({}); did SKIP_DIRS grow?",
        report.files_scanned
    );
}

#[test]
fn serving_contract_covers_the_online_server() {
    // The panic-free contract must extend to every serving-path module;
    // losing one from the list silently un-protects it.
    for file in [
        "crates/nn/src/compile.rs",
        "crates/nn/src/shard.rs",
        "crates/core/src/serve.rs",
        "crates/core/src/session.rs",
        "crates/tensor/src/parallel.rs",
        "crates/tensor/src/faults.rs",
        "crates/tensor/src/engines/protected_rns.rs",
    ] {
        assert!(
            mirage_lint::rules::SERVING_MODULES.contains(&file),
            "{file} missing from the panic-in-serving file list"
        );
    }
}
