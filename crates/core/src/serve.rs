//! Online serving front end: a bounded submission queue and a
//! coalescing dynamic batcher over a compiled model.
//!
//! The compiled plans ([`CompiledNetwork`]) are `Sync` and lock-free,
//! but a production server must turn a stream of *concurrent single
//! requests* into the larger batches that amortize best
//! (`BENCH_serving.json`: ~1.1 ms/item at batch 32 vs ~2.5 ms at
//! batch 1). [`ModelServer`] is that scheduler:
//!
//! - **bounded queue + admission control** — at most
//!   [`ServerConfig::queue_capacity`] requests wait at once; a submit
//!   against a full queue is *rejected* with a typed error
//!   ([`ServeError::QueueFull`]) instead of growing without bound;
//! - **coalescing dynamic batcher** — pending requests are flushed to a
//!   worker as one batch when either [`ServerConfig::max_batch`] have
//!   accumulated or the oldest has waited
//!   [`ServerConfig::max_delay`], whichever comes first;
//! - **per-request accounting** — every response carries its queue
//!   wait, the batch size it joined and the batch's service time
//!   ([`RequestStats`]), aggregated into [`ServerStats`].
//!
//! ## Policy is separated from time
//!
//! Every flush rule lives in [`BatchPolicy`], a **pure state machine**:
//! `on_submit`/`on_tick` take the current time as a plain value and
//! return a [`FlushDecision`]; nothing inside sleeps, spawns or reads a
//! wall clock. Time itself comes from an injected [`Clock`], so unit
//! tests drive the policy (and even a whole server) with a
//! [`VirtualClock`] that only moves when the test says so — flush and
//! deadline behaviour is asserted deterministically, with no
//! sleep-based timing. The real server wires the same policy to a
//! [`SystemClock`] and worker threads.
//!
//! ## Bit-identity
//!
//! Batching must not change anyone's answer: coalescing N users'
//! requests into one flush returns each user exactly the bits they
//! would get from a lone eager forward of their own input.
//!
//! - [`BatchMode::PerItem`] (the default) runs each request through
//!   [`CompiledNetwork::run_with`] individually inside the flush —
//!   bit-identity is inherited directly from the compiled-plan
//!   contract (`run` equals `Sequential::forward` to the last bit),
//!   for **every** plan.
//! - [`BatchMode::Stack`] concatenates the requests' rows into one
//!   GEMM-sized activation, runs the plan once, and splits the output
//!   rows back out. For **row-independent** plans (Dense / ReLU /
//!   LayerNorm stacks, batch-dim convolutions — anything where row `i`
//!   of the output depends only on row `i` of the input) this is
//!   bit-identical too: BFP quantizes activation groups per row, the
//!   packed kernels compute each output row independently, and the
//!   parallel layer never splits `k`. Plans that mix rows (e.g. raw
//!   `SelfAttention` over a sequence) must use `PerItem`; `Stack` is
//!   opt-in for exactly this reason. The concurrent load harness
//!   (`tests/serving_load.rs`, `load_bench`) asserts the equality
//!   mechanically on every engine.
//!
//! Sharded plans need no special casing here: a tensor- or
//! pipeline-parallel placement ([`mirage_nn::shard::ShardPlan`],
//! [`ModelSession::load_sharded`](crate::session::ModelSession::load_sharded))
//! is itself a [`CompiledNetwork`], so the server routes batches
//! through sharded plans unchanged — and the shard layer's own
//! bit-identity contract keeps every coalesced response equal to the
//! lone unsharded forward.
//!
//! ## Faults are accounted, corrected, or typed — never silent
//!
//! When the compiled plan runs over fault-injected engines
//! ([`mirage_tensor::faults::FaultyEngine`], or an RRNS-protected
//! [`mirage_tensor::engines::ProtectedRnsBfpEngine`] with an armed
//! injector), every model execution runs inside a
//! [`FaultScope`](mirage_tensor::faults::FaultScope): the corruptions
//! injected into that run — and what the protection layer detected,
//! corrected, or could not correct — land in the response's
//! [`RequestStats::faults`] and aggregate into [`ServerStats::faults`]
//! per flush. A protected plan that hits an uncorrectable corruption
//! answers that request with [`ServeError::Uncorrectable`] (the worker
//! and its batchmates survive, exactly like the panic firewall); with
//! every injection rate at zero the fault machinery is inert and the
//! bit-identity contract above is unchanged.
//!
//! ```
//! use mirage_core::serve::{ModelServer, ServerConfig};
//! use mirage_core::Mirage;
//! use mirage_nn::layers::{Dense, Relu};
//! use mirage_nn::Sequential;
//! use mirage_tensor::Tensor;
//! use rand::SeedableRng;
//! use std::sync::Arc;
//!
//! let mut rng = rand::rngs::StdRng::seed_from_u64(7);
//! let mut net = Sequential::new();
//! net.push(Dense::new(16, 8, &mut rng));
//! net.push(Relu::new());
//! net.push(Dense::new(8, 4, &mut rng));
//!
//! let mirage = Mirage::paper_default();
//! let engines = mirage.training_engines();
//! let eager = net.forward(&Tensor::ones(&[1, 16]), &engines)?;
//!
//! let compiled = Arc::new(net.compile(&engines)?);
//! let server = ModelServer::new(compiled, ServerConfig::default())?;
//! let response = server.infer(Tensor::ones(&[1, 16]))?;
//! assert_eq!(response.output.data(), eager.data()); // batching never changes bits
//! assert_eq!(response.stats.batch_size, 1);
//! server.join(); // drains in-flight work, then stops the workers
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

use mirage_nn::{CompiledNetwork, NnError};
use mirage_rns::RnsError;
use mirage_tensor::faults::{FaultCounts, FaultScope};
use mirage_tensor::{ActivationScratch, Tensor, TensorError};
use std::collections::VecDeque;
use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::time::{Duration, Instant};

/// Locks a server mutex, recovering from poisoning: the guarded state
/// is only mutated through operations that keep it structurally valid,
/// and the worker loop catches request panics before they can unwind
/// through the lock, so continuing on the intact state is always safe
/// (the serving path is panic-free by contract; see `mirage-lint`'s
/// `panic-in-serving` rule).
fn lock_recover<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(PoisonError::into_inner)
}

// ───────────────────────────── time sources ─────────────────────────────

/// A monotonic time source, expressed as the [`Duration`] since the
/// clock's own epoch.
///
/// The batcher never reads wall time directly: every rule in
/// [`BatchPolicy`] takes `now` as a value, and [`ModelServer`] obtains
/// that value from an injected `Clock`. Production uses
/// [`SystemClock`]; deterministic tests use [`VirtualClock`] and
/// advance it explicitly.
pub trait Clock: Send + Sync + std::fmt::Debug {
    /// The current time as a duration since this clock's epoch.
    fn now(&self) -> Duration;
}

/// The real monotonic clock ([`Instant`]-backed), anchored at
/// construction.
#[derive(Debug)]
pub struct SystemClock {
    epoch: Instant,
}

impl SystemClock {
    /// A clock whose epoch is "now".
    pub fn new() -> Self {
        SystemClock {
            epoch: Instant::now(),
        }
    }
}

impl Default for SystemClock {
    fn default() -> Self {
        SystemClock::new()
    }
}

impl Clock for SystemClock {
    fn now(&self) -> Duration {
        self.epoch.elapsed()
    }
}

/// A manually-advanced clock for deterministic tests: time moves only
/// when the test calls [`VirtualClock::advance`] (or
/// [`VirtualClock::set`]), so deadline behaviour is asserted without a
/// single sleep.
///
/// When a [`ModelServer`] runs on a virtual clock, advance the clock
/// and then [`ModelServer::poke`] it so parked workers re-read the
/// time.
#[derive(Debug, Default)]
pub struct VirtualClock {
    now: Mutex<Duration>,
}

impl VirtualClock {
    /// A clock frozen at its epoch.
    pub fn new() -> Self {
        VirtualClock::default()
    }

    /// Moves time forward by `by`.
    pub fn advance(&self, by: Duration) {
        let mut now = lock_recover(&self.now);
        *now = now.saturating_add(by);
    }

    /// Jumps time to `to` (since the epoch). Time never moves backwards:
    /// a `to` earlier than the current reading is ignored.
    pub fn set(&self, to: Duration) {
        let mut now = lock_recover(&self.now);
        if to > *now {
            *now = to;
        }
    }
}

impl Clock for VirtualClock {
    fn now(&self) -> Duration {
        *lock_recover(&self.now)
    }
}

// ──────────────────────────── batch policy ─────────────────────────────

/// What the batcher should do next, as decided by [`BatchPolicy`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlushDecision {
    /// Take a batch now (either `max_batch` requests are pending or the
    /// oldest pending request has reached its deadline).
    Flush,
    /// Nothing is due yet: re-evaluate at this time (the oldest pending
    /// request's deadline) or when a new request arrives.
    WaitUntil(Duration),
    /// The queue is empty: wait for a submission.
    Idle,
}

/// The outcome of offering a request to [`BatchPolicy::on_submit`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SubmitDecision {
    /// The request was admitted to the queue; the enclosed decision is
    /// `on_tick` evaluated immediately after admission.
    Admitted(FlushDecision),
    /// The bounded queue is at capacity — admission control rejects the
    /// request rather than queueing without bound.
    Rejected,
}

/// The coalescing dynamic-batching rules as a **pure state machine**.
///
/// The policy tracks one FIFO of per-request deadlines (arrival +
/// `max_delay`) and answers two questions — "may this request join the
/// queue?" ([`BatchPolicy::on_submit`]) and "what should a worker do
/// now?" ([`BatchPolicy::on_tick`]) — from a caller-supplied `now`. It
/// never reads a clock, sleeps or spawns, so every flush rule is
/// unit-testable with a [`VirtualClock`] (see the property test
/// `crates/core/tests/serve_policy.rs`):
///
/// - flush when `max_batch` requests are pending, **or** when the
///   oldest pending request has waited `max_delay` — whichever first;
/// - a flush ([`BatchPolicy::on_flush`]) takes the `min(pending,
///   max_batch)` oldest requests, preserving FIFO order;
/// - at most `capacity` requests pend at once; submits beyond that are
///   rejected ([`SubmitDecision::Rejected`]).
///
/// [`ModelServer`] drives one `BatchPolicy` from its worker threads,
/// keeping its request queue in lockstep with the policy's deadline
/// queue under one mutex.
#[derive(Debug, Clone)]
pub struct BatchPolicy {
    max_batch: usize,
    max_delay: Duration,
    capacity: usize,
    /// Deadline (arrival + `max_delay`) of each pending request, FIFO.
    deadlines: VecDeque<Duration>,
}

impl BatchPolicy {
    /// A policy flushing at `max_batch` coalesced requests or after the
    /// oldest has waited `max_delay`, admitting at most `capacity`
    /// pending requests. A `max_batch` of 0 is treated as 1 (a batch
    /// cannot be empty); `capacity` 0 is legal and rejects every
    /// submit.
    pub fn new(max_batch: usize, max_delay: Duration, capacity: usize) -> Self {
        BatchPolicy {
            max_batch: max_batch.max(1),
            max_delay,
            capacity,
            deadlines: VecDeque::new(),
        }
    }

    /// Number of requests currently pending.
    pub fn pending(&self) -> usize {
        self.deadlines.len()
    }

    /// The flush-size ceiling.
    pub fn max_batch(&self) -> usize {
        self.max_batch
    }

    /// The per-request deadline delay.
    pub fn max_delay(&self) -> Duration {
        self.max_delay
    }

    /// The admission-control queue bound.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Offers one request arriving at `now`. On admission the request's
    /// deadline `now + max_delay` joins the FIFO and the returned
    /// decision is [`BatchPolicy::on_tick`] re-evaluated (so the caller
    /// learns immediately whether the arrival completed a batch).
    pub fn on_submit(&mut self, now: Duration) -> SubmitDecision {
        if self.deadlines.len() >= self.capacity {
            return SubmitDecision::Rejected;
        }
        self.deadlines.push_back(now.saturating_add(self.max_delay));
        SubmitDecision::Admitted(self.on_tick(now))
    }

    /// What a worker should do at time `now`: flush (batch full or
    /// oldest deadline reached), wait until the oldest deadline, or
    /// idle on an empty queue.
    pub fn on_tick(&self, now: Duration) -> FlushDecision {
        match self.deadlines.front() {
            None => FlushDecision::Idle,
            Some(&oldest) => {
                if self.deadlines.len() >= self.max_batch || now >= oldest {
                    FlushDecision::Flush
                } else {
                    FlushDecision::WaitUntil(oldest)
                }
            }
        }
    }

    /// Commits a flush: removes the `min(pending, max_batch)` oldest
    /// requests from the FIFO and returns how many were taken (the
    /// caller dequeues exactly that many payloads, preserving order).
    pub fn on_flush(&mut self) -> usize {
        let take = self.deadlines.len().min(self.max_batch);
        for _ in 0..take {
            let _ = self.deadlines.pop_front();
        }
        take
    }
}

// ────────────────────────── config and errors ──────────────────────────

/// How a flush's requests are executed against the compiled plan.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BatchMode {
    /// Run each request individually (one `run_with` per request,
    /// sharing a scratch arena). Bit-identical to a lone eager forward
    /// for **every** plan; coalescing still amortizes wake-ups, lock
    /// traffic and scratch reuse.
    #[default]
    PerItem,
    /// Concatenate the requests' rows into one stacked activation, run
    /// the plan once, split the output rows back out — the batch shape
    /// the quantized GEMM kernels amortize best. Bit-identical for
    /// row-independent plans (see the [module docs](self)); plans that
    /// mix rows across the batch dimension must use
    /// [`BatchMode::PerItem`]. Batches whose requests disagree in rank,
    /// width, or that a stacked run cannot serve row-for-row fall back
    /// to per-item execution, so a malformed request only ever fails
    /// itself.
    Stack,
}

/// Configuration for a [`ModelServer`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServerConfig {
    /// Flush as soon as this many requests have coalesced (also the
    /// size cap of every batch). Must be at least 1.
    pub max_batch: usize,
    /// Flush when the oldest pending request has waited this long, even
    /// if the batch is not full.
    pub max_delay: Duration,
    /// Admission control: at most this many requests may wait in the
    /// queue; further submits are rejected with
    /// [`ServeError::QueueFull`]. A capacity of 0 rejects every submit.
    pub queue_capacity: usize,
    /// Number of worker threads serving flushes. Must be at least 1.
    pub workers: usize,
    /// How a flush executes its requests (see [`BatchMode`]).
    pub batch_mode: BatchMode,
}

impl Default for ServerConfig {
    /// Batch up to 32, 2 ms coalescing window, 1024-deep queue, one
    /// worker, per-item execution.
    fn default() -> Self {
        ServerConfig {
            max_batch: 32,
            max_delay: Duration::from_millis(2),
            queue_capacity: 1024,
            workers: 1,
            batch_mode: BatchMode::PerItem,
        }
    }
}

impl ServerConfig {
    /// Sets the flush size.
    pub fn with_max_batch(mut self, max_batch: usize) -> Self {
        self.max_batch = max_batch;
        self
    }

    /// Sets the coalescing deadline.
    pub fn with_max_delay(mut self, max_delay: Duration) -> Self {
        self.max_delay = max_delay;
        self
    }

    /// Sets the admission-control queue bound.
    pub fn with_queue_capacity(mut self, capacity: usize) -> Self {
        self.queue_capacity = capacity;
        self
    }

    /// Sets the worker-thread count.
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers;
        self
    }

    /// Sets the batch execution mode.
    pub fn with_batch_mode(mut self, mode: BatchMode) -> Self {
        self.batch_mode = mode;
        self
    }

    /// Checks the configuration is serveable.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::InvalidConfig`] when `max_batch` or
    /// `workers` is 0 (`queue_capacity` 0 is legal: it makes admission
    /// control reject every request, which some tests rely on).
    pub fn validate(&self) -> Result<(), ServeError> {
        if self.max_batch == 0 {
            return Err(ServeError::InvalidConfig {
                reason: "max_batch must be at least 1".to_string(),
            });
        }
        if self.workers == 0 {
            return Err(ServeError::InvalidConfig {
                reason: "workers must be at least 1".to_string(),
            });
        }
        Ok(())
    }
}

/// Errors produced by the online serving front end. Every variant is a
/// *response*, never a panic: the serving path is panic-free by
/// machine-checked contract (`mirage-lint`'s `panic-in-serving` rule
/// covers this module).
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ServeError {
    /// Admission control rejected the request: the bounded queue
    /// already holds `capacity` requests.
    QueueFull {
        /// The configured queue bound.
        capacity: usize,
    },
    /// The server is shutting down (or has shut down); new requests are
    /// no longer admitted. In-flight requests are still drained.
    ShuttingDown,
    /// The [`ServerConfig`] cannot be served (e.g. `max_batch` 0).
    InvalidConfig {
        /// What is wrong with the configuration.
        reason: String,
    },
    /// No model is registered under this name
    /// ([`crate::ModelSession::server`]).
    UnknownModel {
        /// The name that was looked up.
        name: String,
    },
    /// The compiled model returned an error for this request.
    Model(NnError),
    /// The model **panicked** while serving this request. The panic was
    /// caught at the batch boundary: the worker survives, every other
    /// request in the batch is still answered, and the panic payload is
    /// reported here.
    Panicked {
        /// The stringified panic payload.
        message: String,
    },
    /// The RRNS protection layer detected a corruption in this
    /// request's execution that it could not correct. The request is
    /// answered with this typed error instead of a silently wrong
    /// output; the counts cover this request's execution up to the
    /// abort.
    Uncorrectable {
        /// Corrupted group results detected during this execution.
        detected: u64,
        /// Corruptions corrected exactly before the abort.
        corrected: u64,
    },
    /// The worker dropped the response channel without answering
    /// (never expected: workers drain the queue even on shutdown).
    Disconnected,
    /// A worker thread could not be spawned.
    WorkerSpawn {
        /// The OS error message.
        message: String,
    },
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::QueueFull { capacity } => {
                write!(f, "submission queue is full (capacity {capacity})")
            }
            ServeError::ShuttingDown => write!(f, "server is shutting down"),
            ServeError::InvalidConfig { reason } => {
                write!(f, "invalid server configuration: {reason}")
            }
            ServeError::UnknownModel { name } => {
                write!(f, "no model registered under {name:?}")
            }
            ServeError::Model(e) => write!(f, "model error: {e}"),
            ServeError::Panicked { message } => {
                write!(f, "model panicked while serving the batch: {message}")
            }
            ServeError::Uncorrectable {
                detected,
                corrected,
            } => {
                write!(
                    f,
                    "uncorrectable corruption detected by RRNS protection \
                     ({detected} detected, {corrected} corrected before the abort)"
                )
            }
            ServeError::Disconnected => {
                write!(f, "worker dropped the response channel without answering")
            }
            ServeError::WorkerSpawn { message } => {
                write!(f, "could not spawn a worker thread: {message}")
            }
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::Model(e) => Some(e),
            _ => None,
        }
    }
}

// ─────────────────────── requests and responses ────────────────────────

/// Per-request accounting attached to every [`Response`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RequestStats {
    /// Time between submission and the flush that took this request.
    pub queue_wait: Duration,
    /// Number of requests in the batch this one was coalesced into.
    pub batch_size: usize,
    /// Execution time of that batch against the compiled model.
    pub service_time: Duration,
    /// Fault events of the execution that produced this response:
    /// injected corruptions and what the protection layer did about
    /// them. Per-item execution attributes exactly this request's run;
    /// a stacked flush shares one execution, so its counts appear on
    /// every member (the server-wide totals count that execution once).
    pub faults: FaultCounts,
}

/// A served request: the model output plus its accounting.
#[derive(Debug, Clone, PartialEq)]
pub struct Response {
    /// The model output for this request's input alone — bit-identical
    /// to an eager per-request forward, regardless of what the request
    /// was batched with.
    pub output: Tensor,
    /// Queue/batch/service accounting for this request.
    pub stats: RequestStats,
}

type Delivery = Result<Response, ServeError>;

/// A handle to a submitted request's future response.
#[derive(Debug)]
pub struct PendingResponse {
    rx: mpsc::Receiver<Delivery>,
}

impl PendingResponse {
    /// Blocks until the request is served (or rejected by the model).
    ///
    /// # Errors
    ///
    /// Propagates the per-request [`ServeError`];
    /// [`ServeError::Disconnected`] if the worker vanished without
    /// answering (never expected — shutdown drains the queue).
    pub fn wait(self) -> Result<Response, ServeError> {
        self.rx.recv().unwrap_or(Err(ServeError::Disconnected))
    }

    /// Non-blocking poll: `None` while the request is still queued or
    /// executing.
    pub fn try_wait(&self) -> Option<Result<Response, ServeError>> {
        match self.rx.try_recv() {
            Ok(delivery) => Some(delivery),
            Err(mpsc::TryRecvError::Empty) => None,
            Err(mpsc::TryRecvError::Disconnected) => Some(Err(ServeError::Disconnected)),
        }
    }
}

// ──────────────────────────── server stats ─────────────────────────────

/// Aggregated server-side accounting, cheap to clone out via
/// [`ModelServer::stats`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ServerStats {
    /// Requests offered to [`ModelServer::submit`].
    pub submitted: u64,
    /// Requests rejected by admission control or shutdown.
    pub rejected: u64,
    /// Requests answered with a model output.
    pub completed: u64,
    /// Requests answered with an error.
    pub failed: u64,
    /// Batches flushed.
    pub batches: u64,
    /// Batches flushed because `max_batch` requests had coalesced.
    pub full_flushes: u64,
    /// Batches flushed because the oldest request reached `max_delay`.
    pub deadline_flushes: u64,
    /// Batches flushed by the shutdown drain.
    pub drain_flushes: u64,
    /// Largest batch served.
    pub max_batch_seen: usize,
    /// Sum of per-request queue waits (mean = `total_queue_wait /
    /// (completed + failed)`).
    pub total_queue_wait: Duration,
    /// Largest single queue wait.
    pub max_queue_wait: Duration,
    /// Sum of batch service times (per batch, not per request).
    pub total_service_time: Duration,
    /// Server-wide fault accounting, aggregated per flush: corruptions
    /// injected into served executions, and how many group results the
    /// RRNS protection layer detected, corrected, or had to surface as
    /// [`ServeError::Uncorrectable`]. Each execution is counted once —
    /// a stacked flush contributes its single run, a per-item flush the
    /// sum of its members' runs.
    pub faults: FaultCounts,
}

impl ServerStats {
    /// Requests answered (completed + failed).
    pub fn answered(&self) -> u64 {
        self.completed + self.failed
    }

    /// Mean coalesced batch size (0 when nothing has been served).
    pub fn mean_batch_size(&self) -> f64 {
        if self.batches == 0 {
            0.0
        } else {
            self.answered() as f64 / self.batches as f64
        }
    }

    /// Mean per-request queue wait (zero when nothing has been served).
    pub fn mean_queue_wait(&self) -> Duration {
        let answered = self.answered();
        if answered == 0 {
            Duration::ZERO
        } else {
            self.total_queue_wait / answered as u32
        }
    }
}

// ──────────────────────────── the server ───────────────────────────────

/// Why a batch was flushed (recorded into [`ServerStats`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum FlushReason {
    Full,
    Deadline,
    Drain,
}

/// One queued request: the input, its submission time, and the channel
/// its answer travels back on.
struct Pending {
    input: Tensor,
    submitted: Duration,
    tx: mpsc::Sender<Delivery>,
}

/// State guarded by the server mutex. `policy` and `queue` move in
/// lockstep: one policy deadline per queued request, FIFO.
struct State {
    policy: BatchPolicy,
    queue: VecDeque<Pending>,
    stats: ServerStats,
    shutdown: bool,
}

struct Shared {
    model: Arc<CompiledNetwork>,
    config: ServerConfig,
    clock: Arc<dyn Clock>,
    state: Mutex<State>,
    work: Condvar,
}

/// An online serving front end over one compiled model: bounded
/// submission queue, coalescing dynamic batcher, admission control and
/// per-request accounting. See the [module docs](self) for the design
/// and the bit-identity contract.
///
/// The server is `Sync`: any number of client threads may
/// [`submit`](ModelServer::submit) concurrently. Dropping the server
/// (or calling [`join`](ModelServer::join)) shuts it down gracefully:
/// new submits are rejected with [`ServeError::ShuttingDown`] while
/// every already-admitted request is still drained and answered.
pub struct ModelServer {
    shared: Arc<Shared>,
    workers: Vec<std::thread::JoinHandle<()>>,
}

impl std::fmt::Debug for ModelServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ModelServer")
            .field("config", &self.shared.config)
            .field("workers", &self.workers.len())
            .finish()
    }
}

impl ModelServer {
    /// Starts a server over `model` on the real monotonic clock.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::InvalidConfig`] for an unserveable
    /// configuration and [`ServeError::WorkerSpawn`] if the OS refuses
    /// a worker thread.
    pub fn new(model: Arc<CompiledNetwork>, config: ServerConfig) -> Result<Self, ServeError> {
        ModelServer::with_clock(model, config, Arc::new(SystemClock::new()))
    }

    /// Starts a server on an injected [`Clock`] — with a
    /// [`VirtualClock`], deadline behaviour becomes deterministically
    /// testable: advance the clock, [`poke`](ModelServer::poke) the
    /// server, and block on the response (no sleeps anywhere).
    ///
    /// # Errors
    ///
    /// Same as [`ModelServer::new`].
    pub fn with_clock(
        model: Arc<CompiledNetwork>,
        config: ServerConfig,
        clock: Arc<dyn Clock>,
    ) -> Result<Self, ServeError> {
        config.validate()?;
        let shared = Arc::new(Shared {
            model,
            state: Mutex::new(State {
                policy: BatchPolicy::new(config.max_batch, config.max_delay, config.queue_capacity),
                queue: VecDeque::new(),
                stats: ServerStats::default(),
                shutdown: false,
            }),
            work: Condvar::new(),
            clock,
            config,
        });
        let mut workers = Vec::with_capacity(shared.config.workers);
        for i in 0..shared.config.workers {
            let worker_shared = Arc::clone(&shared);
            let handle = std::thread::Builder::new()
                .name(format!("mirage-serve-{i}"))
                .spawn(move || worker_loop(&worker_shared))
                .map_err(|e| ServeError::WorkerSpawn {
                    message: e.to_string(),
                })?;
            workers.push(handle);
        }
        Ok(ModelServer { shared, workers })
    }

    /// The server configuration.
    pub fn config(&self) -> &ServerConfig {
        &self.shared.config
    }

    /// Submits one request, returning immediately with a handle to its
    /// future response. The request's answer is bit-identical to a lone
    /// eager forward of `input`, whatever it gets batched with.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::QueueFull`] when admission control rejects
    /// the request (bounded queue at capacity) and
    /// [`ServeError::ShuttingDown`] after shutdown began. Both are
    /// immediate — a rejected request never blocks.
    pub fn submit(&self, input: Tensor) -> Result<PendingResponse, ServeError> {
        let mut state = lock_recover(&self.shared.state);
        state.stats.submitted += 1;
        if state.shutdown {
            state.stats.rejected += 1;
            return Err(ServeError::ShuttingDown);
        }
        let now = self.shared.clock.now();
        match state.policy.on_submit(now) {
            SubmitDecision::Rejected => {
                state.stats.rejected += 1;
                Err(ServeError::QueueFull {
                    capacity: self.shared.config.queue_capacity,
                })
            }
            SubmitDecision::Admitted(_) => {
                let (tx, rx) = mpsc::channel();
                state.queue.push_back(Pending {
                    input,
                    submitted: now,
                    tx,
                });
                drop(state);
                self.shared.work.notify_one();
                Ok(PendingResponse { rx })
            }
        }
    }

    /// Submits one request and blocks until it is served:
    /// `submit(input)?.wait()`.
    ///
    /// # Errors
    ///
    /// Same as [`ModelServer::submit`] plus the per-request
    /// [`ServeError`] from the response itself.
    pub fn infer(&self, input: Tensor) -> Result<Response, ServeError> {
        self.submit(input)?.wait()
    }

    /// A snapshot of the aggregated server stats.
    pub fn stats(&self) -> ServerStats {
        lock_recover(&self.shared.state).stats.clone()
    }

    /// Number of requests currently waiting in the queue.
    pub fn queue_depth(&self) -> usize {
        lock_recover(&self.shared.state).queue.len()
    }

    /// Wakes every parked worker so it re-reads the clock. Only needed
    /// when driving a server on a [`VirtualClock`]: advance the clock,
    /// then poke.
    pub fn poke(&self) {
        self.shared.work.notify_all();
    }

    /// Begins shutdown: new submits are rejected with
    /// [`ServeError::ShuttingDown`], while everything already admitted
    /// is drained and answered. Idempotent; does not block — drop the
    /// server or call [`ModelServer::join`] to wait for the workers.
    pub fn shutdown(&self) {
        let mut state = lock_recover(&self.shared.state);
        state.shutdown = true;
        drop(state);
        self.shared.work.notify_all();
    }

    /// Shuts down and blocks until the workers have drained the queue
    /// and exited. Every admitted request is answered before this
    /// returns.
    pub fn join(mut self) {
        self.finish();
    }

    fn finish(&mut self) {
        self.shutdown();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

impl Drop for ModelServer {
    /// Graceful shutdown: drains admitted requests, then joins the
    /// workers.
    fn drop(&mut self) {
        self.finish();
    }
}

// ──────────────────────────── worker loop ──────────────────────────────

fn wait<'a>(shared: &'a Shared, guard: MutexGuard<'a, State>) -> MutexGuard<'a, State> {
    shared
        .work
        .wait(guard)
        .unwrap_or_else(PoisonError::into_inner)
}

fn wait_timeout<'a>(
    shared: &'a Shared,
    guard: MutexGuard<'a, State>,
    timeout: Duration,
) -> MutexGuard<'a, State> {
    match shared.work.wait_timeout(guard, timeout) {
        Ok((guard, _)) => guard,
        Err(poisoned) => poisoned.into_inner().0,
    }
}

fn worker_loop(shared: &Shared) {
    let mut scratch = ActivationScratch::new();
    let mut state = lock_recover(&shared.state);
    loop {
        let now = shared.clock.now();
        let decision = state.policy.on_tick(now);
        let draining =
            state.shutdown && decision != FlushDecision::Flush && !state.queue.is_empty();
        if decision == FlushDecision::Flush || draining {
            let reason = if draining {
                FlushReason::Drain
            } else if state.policy.pending() >= shared.config.max_batch {
                FlushReason::Full
            } else {
                FlushReason::Deadline
            };
            let take = state.policy.on_flush().min(state.queue.len());
            let batch: Vec<Pending> = state.queue.drain(..take).collect();
            drop(state);
            if !batch.is_empty() {
                serve_batch(shared, batch, now, reason, &mut scratch);
            }
            state = lock_recover(&shared.state);
            continue;
        }
        if state.shutdown {
            // Queue empty (any flush/drain was handled above): done.
            break;
        }
        state = match decision {
            FlushDecision::Idle => wait(shared, state),
            FlushDecision::WaitUntil(deadline) => {
                let timeout = deadline.saturating_sub(shared.clock.now());
                wait_timeout(shared, state, timeout)
            }
            FlushDecision::Flush => state, // handled above; loop again
        };
    }
}

/// Executes one flushed batch and answers every member. Runs **outside**
/// the server lock; panics from the model are caught here so a worker
/// survives any request.
fn serve_batch(
    shared: &Shared,
    batch: Vec<Pending>,
    taken_at: Duration,
    reason: FlushReason,
    scratch: &mut ActivationScratch,
) {
    let size = batch.len();
    let started = shared.clock.now();
    let (results, flush_faults) = execute(shared, &batch, scratch);
    let service_time = shared.clock.now().saturating_sub(started);

    let mut completed = 0u64;
    let mut failed = 0u64;
    let mut total_wait = Duration::ZERO;
    let mut max_wait = Duration::ZERO;
    let mut deliveries = Vec::with_capacity(size);
    for (pending, (result, faults)) in batch.into_iter().zip(results) {
        let queue_wait = taken_at.saturating_sub(pending.submitted);
        total_wait = total_wait.saturating_add(queue_wait);
        max_wait = max_wait.max(queue_wait);
        let delivery = match result {
            Ok(output) => {
                completed += 1;
                Ok(Response {
                    output,
                    stats: RequestStats {
                        queue_wait,
                        batch_size: size,
                        service_time,
                        faults,
                    },
                })
            }
            Err(e) => {
                failed += 1;
                Err(e)
            }
        };
        deliveries.push((pending.tx, delivery));
    }

    // Account the batch BEFORE answering the clients, so a client that
    // observes its response also observes the stats covering it.
    let mut state = lock_recover(&shared.state);
    let stats = &mut state.stats;
    stats.completed += completed;
    stats.failed += failed;
    stats.batches += 1;
    match reason {
        FlushReason::Full => stats.full_flushes += 1,
        FlushReason::Deadline => stats.deadline_flushes += 1,
        FlushReason::Drain => stats.drain_flushes += 1,
    }
    stats.max_batch_seen = stats.max_batch_seen.max(size);
    stats.total_queue_wait = stats.total_queue_wait.saturating_add(total_wait);
    stats.max_queue_wait = stats.max_queue_wait.max(max_wait);
    stats.total_service_time = stats.total_service_time.saturating_add(service_time);
    stats.faults.accumulate(flush_faults);
    drop(state);

    for (tx, delivery) in deliveries {
        // A client that dropped its handle just doesn't read the answer.
        let _ = tx.send(delivery);
    }
}

/// One request's outcome with the fault counts of the execution that
/// produced it.
type FaultedResult = (Result<Tensor, ServeError>, FaultCounts);

/// Runs the batch under the configured [`BatchMode`]. Stacked execution
/// falls back to per-item whenever the batch cannot be stacked (mixed
/// shapes, model error, or a plan that does not map rows 1:1), so a
/// malformed request only ever fails itself. Returns each member's
/// result with the fault counts of the execution that produced it, plus
/// the flush-level fault total (each execution counted once).
fn execute(
    shared: &Shared,
    batch: &[Pending],
    scratch: &mut ActivationScratch,
) -> (Vec<FaultedResult>, FaultCounts) {
    if shared.config.batch_mode == BatchMode::Stack && batch.len() > 1 {
        if let Some((results, faults)) = try_stacked(shared, batch, scratch) {
            return (results.into_iter().map(|r| (r, faults)).collect(), faults);
        }
    }
    let mut flush_faults = FaultCounts::ZERO;
    let results = batch
        .iter()
        .map(|p| {
            let (result, faults) = catch_run(shared, &p.input, scratch);
            flush_faults.accumulate(faults);
            (result, faults)
        })
        .collect();
    (results, flush_faults)
}

/// Stacks the batch's rows into one activation, runs the plan once, and
/// splits the output back per request. `None` means "use per-item
/// execution instead" — taken when shapes are heterogeneous, the
/// stacked run errors/panics, or the output does not map rows 1:1.
/// (A stacked run aborted by an uncorrectable corruption falls back the
/// same way: the per-item re-runs draw fresh faults, so only requests
/// whose own execution is corrupted fail.) Returns the split results
/// with the stacked execution's fault counts.
fn try_stacked(
    shared: &Shared,
    batch: &[Pending],
    scratch: &mut ActivationScratch,
) -> Option<(Vec<Result<Tensor, ServeError>>, FaultCounts)> {
    let first = batch.first()?;
    if first.input.rank() != 2 {
        return None;
    }
    let cols = *first.input.shape().get(1)?;
    let mut total_rows = 0usize;
    for pending in batch {
        if pending.input.rank() != 2 || pending.input.shape().get(1) != Some(&cols) {
            return None;
        }
        total_rows += *pending.input.shape().first()?;
    }
    if total_rows == 0 {
        return None;
    }
    let mut data = Vec::with_capacity(total_rows * cols);
    for pending in batch {
        data.extend_from_slice(pending.input.data());
    }
    let stacked = Tensor::from_vec(data, &[total_rows, cols]).ok()?;
    let (result, faults) = catch_run(shared, &stacked, scratch);
    let output = result.ok()?;
    if output.rank() != 2 || output.shape().first() != Some(&total_rows) {
        // The plan does not preserve the row dimension (e.g. a pooling
        // head): stacking cannot be split back — serve per item.
        return None;
    }
    let out_cols = *output.shape().get(1)?;
    let out_data = output.data();
    let mut results = Vec::with_capacity(batch.len());
    let mut row = 0usize;
    for pending in batch {
        let rows = pending.input.shape().first().copied().unwrap_or(0);
        let slice = out_data.get(row * out_cols..(row + rows) * out_cols)?;
        results.push(
            Tensor::from_vec(slice.to_vec(), &[rows, out_cols])
                .map_err(|e| ServeError::Model(NnError::Tensor(e))),
        );
        row += rows;
    }
    Some((results, faults))
}

/// One model execution with a panic firewall and a fault-accounting
/// scope. A panicking plan step becomes [`ServeError::Panicked`] for
/// the affected request instead of killing the worker (and hanging
/// every queued client); the scratch arena is replaced after a caught
/// panic — its buffers may be stale. Every fault event recorded during
/// the run (injections by a `FaultyEngine` or armed protected engine,
/// detections/corrections by the RRNS layer) is captured in the
/// returned [`FaultCounts`], and an RRNS abort is mapped to the typed
/// [`ServeError::Uncorrectable`].
fn catch_run(
    shared: &Shared,
    x: &Tensor,
    scratch: &mut ActivationScratch,
) -> (Result<Tensor, ServeError>, FaultCounts) {
    let scope = FaultScope::begin();
    let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        shared.model.run_with(x, scratch)
    }));
    let faults = scope.finish();
    let result = match outcome {
        Ok(Ok(output)) => Ok(output),
        Ok(Err(e)) => Err(model_error(e, faults)),
        Err(payload) => {
            *scratch = ActivationScratch::new();
            Err(ServeError::Panicked {
                message: panic_message(payload.as_ref()),
            })
        }
    };
    (result, faults)
}

/// Maps a model error onto its serving error: an uncorrectable RRNS
/// abort becomes [`ServeError::Uncorrectable`] carrying this
/// execution's detection/correction counts; everything else stays a
/// [`ServeError::Model`].
fn model_error(e: NnError, faults: FaultCounts) -> ServeError {
    match e {
        NnError::Tensor(TensorError::Rns(RnsError::Uncorrectable)) => ServeError::Uncorrectable {
            detected: faults.detected,
            corrected: faults.corrected,
        },
        other => ServeError::Model(other),
    }
}

/// Best-effort stringification of a caught panic payload.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "opaque panic payload".to_string()
    }
}

#[cfg(test)]
mod policy_tests {
    use super::*;

    const MS: Duration = Duration::from_millis(1);

    /// Flush rules under a virtual clock: pure, deterministic, no
    /// sleeps. (The arbitrary-sequence version of these checks is the
    /// property test in `crates/core/tests/serve_policy.rs`.)
    #[test]
    fn flushes_when_batch_fills() {
        let mut p = BatchPolicy::new(3, 10 * MS, 100);
        let now = Duration::ZERO;
        assert_eq!(p.on_tick(now), FlushDecision::Idle);
        assert_eq!(
            p.on_submit(now),
            SubmitDecision::Admitted(FlushDecision::WaitUntil(10 * MS))
        );
        assert_eq!(
            p.on_submit(now),
            SubmitDecision::Admitted(FlushDecision::WaitUntil(10 * MS))
        );
        // Third arrival completes the batch: flush on count, not time.
        assert_eq!(
            p.on_submit(now),
            SubmitDecision::Admitted(FlushDecision::Flush)
        );
        assert_eq!(p.on_flush(), 3);
        assert_eq!(p.pending(), 0);
        assert_eq!(p.on_tick(now), FlushDecision::Idle);
    }

    #[test]
    fn flushes_at_the_deadline_even_for_one_request() {
        let mut p = BatchPolicy::new(32, 10 * MS, 100);
        assert_eq!(
            p.on_submit(2 * MS),
            SubmitDecision::Admitted(FlushDecision::WaitUntil(12 * MS))
        );
        // Before the deadline: wait exactly until it.
        assert_eq!(p.on_tick(11 * MS), FlushDecision::WaitUntil(12 * MS));
        // At/after the deadline: flush, batch of one.
        assert_eq!(p.on_tick(12 * MS), FlushDecision::Flush);
        assert_eq!(p.on_flush(), 1);
    }

    #[test]
    fn deadline_is_the_oldest_requests() {
        let mut p = BatchPolicy::new(32, 10 * MS, 100);
        let _ = p.on_submit(Duration::ZERO);
        let _ = p.on_submit(7 * MS);
        // The wait target is the OLDEST deadline, not the newest.
        assert_eq!(p.on_tick(8 * MS), FlushDecision::WaitUntil(10 * MS));
        assert_eq!(p.on_tick(10 * MS), FlushDecision::Flush);
        // Both requests go in the same deadline flush.
        assert_eq!(p.on_flush(), 2);
    }

    #[test]
    fn flush_takes_at_most_max_batch_and_rearms() {
        let mut p = BatchPolicy::new(2, 10 * MS, 100);
        for _ in 0..5 {
            let _ = p.on_submit(Duration::ZERO);
        }
        assert_eq!(p.pending(), 5);
        assert_eq!(p.on_flush(), 2);
        assert_eq!(p.on_flush(), 2);
        // The remainder re-arms as its own (eventually deadline) batch.
        assert_eq!(p.on_tick(Duration::ZERO), FlushDecision::WaitUntil(10 * MS));
        assert_eq!(p.on_tick(10 * MS), FlushDecision::Flush);
        assert_eq!(p.on_flush(), 1);
    }

    #[test]
    fn capacity_rejects_and_flush_frees_space() {
        let mut p = BatchPolicy::new(100, 10 * MS, 2);
        assert!(matches!(
            p.on_submit(Duration::ZERO),
            SubmitDecision::Admitted(_)
        ));
        assert!(matches!(
            p.on_submit(Duration::ZERO),
            SubmitDecision::Admitted(_)
        ));
        assert_eq!(p.on_submit(Duration::ZERO), SubmitDecision::Rejected);
        let _ = p.on_tick(20 * MS);
        assert_eq!(p.on_flush(), 2);
        assert!(matches!(p.on_submit(20 * MS), SubmitDecision::Admitted(_)));
    }

    #[test]
    fn zero_capacity_rejects_everything() {
        let mut p = BatchPolicy::new(4, MS, 0);
        assert_eq!(p.on_submit(Duration::ZERO), SubmitDecision::Rejected);
        assert_eq!(p.pending(), 0);
    }

    #[test]
    fn zero_max_batch_is_clamped_to_one() {
        let mut p = BatchPolicy::new(0, MS, 8);
        assert_eq!(p.max_batch(), 1);
        assert_eq!(
            p.on_submit(Duration::ZERO),
            SubmitDecision::Admitted(FlushDecision::Flush)
        );
        assert_eq!(p.on_flush(), 1);
    }

    #[test]
    fn virtual_clock_is_monotone() {
        let clock = VirtualClock::new();
        assert_eq!(clock.now(), Duration::ZERO);
        clock.advance(5 * MS);
        clock.set(3 * MS); // backwards jumps are ignored
        assert_eq!(clock.now(), 5 * MS);
        clock.set(9 * MS);
        assert_eq!(clock.now(), 9 * MS);
    }
}

#[cfg(test)]
mod server_tests {
    use super::*;
    use mirage_nn::compile::{EagerStep, PlanStep};
    use mirage_nn::layers::{Dense, Layer, Relu};
    use mirage_nn::{Engines, Sequential};
    use mirage_tensor::engines::ExactEngine;
    use rand::SeedableRng;

    fn mlp(seed: u64) -> Sequential {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut net = Sequential::new();
        net.push(Dense::new(16, 12, &mut rng));
        net.push(Relu::new());
        net.push(Dense::new(12, 4, &mut rng));
        net
    }

    fn compiled(seed: u64) -> (Sequential, Engines, Arc<CompiledNetwork>) {
        let net = mlp(seed);
        let engines = Engines::uniform(ExactEngine);
        let plan = Arc::new(net.compile(&engines).unwrap());
        (net, engines, plan)
    }

    #[test]
    fn zero_capacity_queue_rejects_with_typed_error_and_no_panic() {
        let (_, _, plan) = compiled(1);
        let server =
            ModelServer::new(plan, ServerConfig::default().with_queue_capacity(0)).unwrap();
        let err = server.submit(Tensor::ones(&[1, 16])).unwrap_err();
        assert_eq!(err, ServeError::QueueFull { capacity: 0 });
        assert_eq!(server.stats().rejected, 1);
        server.join();
    }

    #[test]
    fn full_queue_rejects_while_the_clock_is_frozen() {
        let (_, _, plan) = compiled(2);
        // Frozen virtual clock + large max_batch: nothing can flush, so
        // the queue bound is exercised deterministically.
        let clock = Arc::new(VirtualClock::new());
        let config = ServerConfig::default()
            .with_max_batch(64)
            .with_max_delay(Duration::from_secs(3600))
            .with_queue_capacity(2);
        let server = ModelServer::with_clock(plan, config, clock.clone()).unwrap();
        let a = server.submit(Tensor::ones(&[1, 16])).unwrap();
        let b = server.submit(Tensor::ones(&[1, 16])).unwrap();
        let err = server.submit(Tensor::ones(&[1, 16])).unwrap_err();
        assert_eq!(err, ServeError::QueueFull { capacity: 2 });
        // Drain deterministically: advance past the deadline and poke.
        clock.advance(Duration::from_secs(7200));
        server.poke();
        assert_eq!(a.wait().unwrap().stats.batch_size, 2);
        assert_eq!(b.wait().unwrap().stats.batch_size, 2);
        let stats = server.stats();
        assert_eq!(stats.rejected, 1);
        assert_eq!(stats.completed, 2);
        server.join();
    }

    #[test]
    fn submit_after_shutdown_errors_cleanly() {
        let (_, _, plan) = compiled(3);
        let server = ModelServer::new(plan, ServerConfig::default()).unwrap();
        server.shutdown();
        let err = server.submit(Tensor::ones(&[1, 16])).unwrap_err();
        assert_eq!(err, ServeError::ShuttingDown);
        server.join();
    }

    #[test]
    fn single_request_flushes_at_the_deadline_without_sleeps() {
        let (mut net, engines, plan) = compiled(4);
        let clock = Arc::new(VirtualClock::new());
        let config = ServerConfig::default()
            .with_max_batch(64)
            .with_max_delay(Duration::from_secs(3600));
        let server = ModelServer::with_clock(plan, config, clock.clone()).unwrap();
        let x = Tensor::full(&[1, 16], 0.25);
        let handle = server.submit(x.clone()).unwrap();
        // Deadline reached on the virtual clock; wake the worker.
        clock.advance(Duration::from_secs(3600));
        server.poke();
        let response = handle.wait().unwrap();
        assert_eq!(response.stats.batch_size, 1);
        assert_eq!(response.stats.queue_wait, Duration::from_secs(3600));
        let eager = net.forward(&x, &engines).unwrap();
        assert_eq!(response.output.data(), eager.data());
        let stats = server.stats();
        assert_eq!(stats.deadline_flushes, 1);
        assert_eq!(stats.full_flushes, 0);
        assert_eq!(stats.max_queue_wait, Duration::from_secs(3600));
        server.join();
    }

    #[test]
    fn full_batch_flushes_on_count_alone_with_frozen_clock() {
        let (mut net, engines, plan) = compiled(5);
        let clock = Arc::new(VirtualClock::new());
        let config = ServerConfig::default()
            .with_max_batch(4)
            .with_max_delay(Duration::from_secs(3600))
            .with_batch_mode(BatchMode::Stack);
        let server = ModelServer::with_clock(plan, config, clock).unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(50);
        let inputs: Vec<Tensor> = (0..4)
            .map(|_| Tensor::randn(&[1, 16], 1.0, &mut rng))
            .collect();
        let handles: Vec<PendingResponse> = inputs
            .iter()
            .map(|x| server.submit(x.clone()).unwrap())
            .collect();
        // Time never moves; the 4th submission completes the batch.
        for (x, handle) in inputs.iter().zip(handles) {
            let response = handle.wait().unwrap();
            assert_eq!(response.stats.batch_size, 4);
            let eager = net.forward(x, &engines).unwrap();
            assert_eq!(response.output.data(), eager.data());
        }
        let stats = server.stats();
        assert_eq!(stats.full_flushes, 1);
        assert_eq!(stats.batches, 1);
        assert_eq!(stats.max_batch_seen, 4);
        assert_eq!(stats.mean_batch_size(), 4.0);
        server.join();
    }

    #[test]
    fn drop_drains_admitted_requests() {
        let (_, _, plan) = compiled(6);
        let config = ServerConfig::default()
            .with_max_batch(3)
            .with_max_delay(Duration::from_secs(3600));
        // Virtual clock frozen: only the shutdown drain can serve the
        // last partial batch.
        let server = ModelServer::with_clock(plan, config, Arc::new(VirtualClock::new())).unwrap();
        let handles: Vec<PendingResponse> = (0..5)
            .map(|_| server.submit(Tensor::ones(&[1, 16])).unwrap())
            .collect();
        drop(server); // graceful: drains all 5 before the workers exit
        for handle in handles {
            assert!(handle.wait().is_ok());
        }
    }

    #[test]
    fn invalid_configs_are_rejected() {
        let (_, _, plan) = compiled(7);
        assert!(matches!(
            ModelServer::new(plan.clone(), ServerConfig::default().with_max_batch(0)),
            Err(ServeError::InvalidConfig { .. })
        ));
        assert!(matches!(
            ModelServer::new(plan, ServerConfig::default().with_workers(0)),
            Err(ServeError::InvalidConfig { .. })
        ));
    }

    #[test]
    fn model_errors_are_responses_not_hangs() {
        let (_, _, plan) = compiled(8);
        let server = ModelServer::new(plan, ServerConfig::default()).unwrap();
        // Wrong input width: the model rejects it, the server reports it.
        let err = server.infer(Tensor::ones(&[1, 7])).unwrap_err();
        assert!(matches!(err, ServeError::Model(_)), "{err:?}");
        assert_eq!(server.stats().failed, 1);
        // The server keeps serving after a failed request.
        assert!(server.infer(Tensor::ones(&[1, 16])).is_ok());
        server.join();
    }

    #[test]
    fn stacked_mode_falls_back_per_item_on_heterogeneous_batches() {
        let (mut net, engines, plan) = compiled(9);
        let clock = Arc::new(VirtualClock::new());
        let config = ServerConfig::default()
            .with_max_batch(2)
            .with_max_delay(Duration::from_secs(3600))
            .with_batch_mode(BatchMode::Stack);
        let server = ModelServer::with_clock(plan, config, clock).unwrap();
        // One well-formed and one malformed request coalesce: the bad
        // one fails alone, the good one is still answered correctly.
        let good_x = Tensor::full(&[1, 16], 0.5);
        let good = server.submit(good_x.clone()).unwrap();
        let bad = server.submit(Tensor::ones(&[1, 9])).unwrap();
        let response = good.wait().unwrap();
        let eager = net.forward(&good_x, &engines).unwrap();
        assert_eq!(response.output.data(), eager.data());
        assert!(matches!(bad.wait(), Err(ServeError::Model(_))));
        server.join();
    }

    /// A custom layer whose forward panics on a sentinel input — wrapped
    /// in an [`EagerStep`], the panic poisons the step's internal mutex.
    #[derive(Clone)]
    struct Trapdoor;

    impl Layer for Trapdoor {
        fn name(&self) -> &'static str {
            "trapdoor"
        }

        fn forward(&mut self, x: &Tensor, _engines: &Engines) -> mirage_nn::Result<Tensor> {
            if x.data().first() == Some(&13.0) {
                panic!("trapdoor sprung");
            }
            Ok(x.clone())
        }

        fn backward(&mut self, d_out: &Tensor, _engines: &Engines) -> mirage_nn::Result<Tensor> {
            Ok(d_out.clone())
        }

        fn compile(&self, engines: &Engines) -> mirage_nn::Result<Box<dyn PlanStep>> {
            Ok(EagerStep::boxed(self.clone(), engines))
        }
    }

    #[test]
    fn worker_panic_and_poisoned_step_surface_as_error_responses_not_hangs() {
        let engines = Engines::uniform(ExactEngine);
        let mut net = Sequential::new();
        net.push(Trapdoor);
        let plan = Arc::new(net.compile(&engines).unwrap());
        let server = ModelServer::new(plan, ServerConfig::default()).unwrap();

        // Healthy request first: identity.
        let ok = server.infer(Tensor::full(&[1, 3], 2.0)).unwrap();
        assert_eq!(ok.output.data(), &[2.0, 2.0, 2.0]);

        // The sentinel panics inside the EagerStep lock. The panic is
        // caught at the batch boundary: an error response, not a hang,
        // and the worker thread survives.
        let trap = Tensor::from_vec(vec![13.0, 0.0, 0.0], &[1, 3]).unwrap();
        let err = server.infer(trap).unwrap_err();
        assert!(
            matches!(&err, ServeError::Panicked { message } if message.contains("trapdoor")),
            "{err:?}"
        );

        // The EagerStep's mutex is now poisoned: later requests get the
        // typed PoisonedStep error response — still no hang.
        let err = server.infer(Tensor::full(&[1, 3], 2.0)).unwrap_err();
        assert!(
            matches!(
                &err,
                ServeError::Model(NnError::PoisonedStep { layer }) if layer == "trapdoor"
            ),
            "{err:?}"
        );
        let stats = server.stats();
        assert_eq!(stats.completed, 1);
        assert_eq!(stats.failed, 2);
        server.join();
    }

    #[test]
    fn stats_accessors_and_error_display_cover_the_surface() {
        let stats = ServerStats::default();
        assert_eq!(stats.mean_batch_size(), 0.0);
        assert_eq!(stats.mean_queue_wait(), Duration::ZERO);
        assert_eq!(stats.answered(), 0);
        for err in [
            ServeError::QueueFull { capacity: 3 },
            ServeError::ShuttingDown,
            ServeError::InvalidConfig { reason: "r".into() },
            ServeError::UnknownModel { name: "m".into() },
            ServeError::Model(NnError::Diverged),
            ServeError::Panicked {
                message: "p".into(),
            },
            ServeError::Uncorrectable {
                detected: 3,
                corrected: 2,
            },
            ServeError::Disconnected,
            ServeError::WorkerSpawn {
                message: "os".into(),
            },
        ] {
            assert!(!err.to_string().is_empty());
        }
        use std::error::Error;
        assert!(ServeError::Model(NnError::Diverged).source().is_some());
        assert!(ServeError::ShuttingDown.source().is_none());
    }

    #[test]
    fn fault_counts_thread_through_request_and_server_stats() {
        use mirage_tensor::faults::{FaultConfig, FaultInjector, FaultyEngine};

        let injector = Arc::new(FaultInjector::new(
            FaultConfig::disabled(77).with_mantissa_flip_rate(0.5),
        ));
        let engines = Engines::uniform(FaultyEngine::new(ExactEngine, Arc::clone(&injector)));
        let net = mlp(60);
        let plan = Arc::new(net.compile(&engines).unwrap());
        let server = ModelServer::new(plan, ServerConfig::default()).unwrap();

        let response = server.infer(Tensor::full(&[1, 16], 0.5)).unwrap();
        assert!(
            response.stats.faults.injected > 0,
            "a 50% flip rate over two Dense layers must fire"
        );
        // Unprotected engine: injections only, nothing detected.
        assert_eq!(response.stats.faults.detected, 0);
        let stats = server.stats();
        assert_eq!(stats.faults, response.stats.faults);

        // Live retuning to zero: the next request is fault-free.
        injector.set_mantissa_flip_rate(0.0);
        let clean = server.infer(Tensor::full(&[1, 16], 0.5)).unwrap();
        assert_eq!(clean.stats.faults, FaultCounts::ZERO);
        assert_eq!(server.stats().faults, stats.faults);
        server.join();
    }

    #[test]
    fn uncorrectable_abort_is_a_typed_error_response_and_the_server_survives() {
        use mirage_bfp::BfpConfig;
        use mirage_tensor::engines::ProtectedRnsBfpEngine;
        use mirage_tensor::faults::{FaultConfig, FaultInjector};

        let injector = Arc::new(FaultInjector::new(
            FaultConfig::disabled(78).with_residue_flip_rate(0.9),
        ));
        let protected = ProtectedRnsBfpEngine::with_min_special_set(BfpConfig::mirage_default())
            .unwrap()
            .with_injector(Arc::clone(&injector));
        let engines = Engines::uniform(protected.clone());
        let mut net = mlp(61);
        let plan = Arc::new(net.compile(&engines).unwrap());
        let server = ModelServer::new(plan, ServerConfig::default()).unwrap();

        let x = Tensor::full(&[1, 16], 0.5);
        let err = server.infer(x.clone()).unwrap_err();
        match err {
            ServeError::Uncorrectable {
                detected,
                corrected,
            } => {
                assert!(detected > corrected, "at least one group was unfixable");
            }
            other => panic!("expected Uncorrectable, got {other:?}"),
        }
        let stats = server.stats();
        assert_eq!(stats.failed, 1);
        assert!(stats.faults.uncorrectable > 0);

        // The worker survives; with injection disabled the same server
        // answers bit-identically to the clean eager forward.
        injector.set_residue_flip_rate(0.0);
        let response = server.infer(x.clone()).unwrap();
        let clean_engines = Engines::uniform(protected.clone());
        let eager = net.forward(&x, &clean_engines).unwrap();
        assert_eq!(response.output.data(), eager.data());
        assert_eq!(response.stats.faults, FaultCounts::ZERO);
        server.join();
    }
}
