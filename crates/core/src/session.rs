//! Serving-oriented inference sessions with cached prepared weights.

use crate::accelerator::Mirage;
use mirage_tensor::engines::BfpEngine;
use mirage_tensor::parallel::{ParallelGemm, TileConfig};
use mirage_tensor::{GemmEngine, PreparedRhs, Result, Tensor, TensorError};
use std::collections::HashMap;
use std::sync::{Arc, Mutex};

/// An inference session over the Mirage arithmetic that quantizes each
/// weight matrix **once** and reuses the preparation for every
/// subsequent request — the serving model behind the paper's Table III
/// workloads (batch 1–128 inference against static weights), where
/// weight preparation must be a one-time cost, not a per-call one.
///
/// Weights are keyed per layer: [`InferenceSession::load`] runs the
/// quantizer, and [`InferenceSession::infer`] /
/// [`InferenceSession::infer_batch`] only touch the activation side.
/// Results are bit-identical to the unprepared
/// [`Mirage::gemm_engine`] path — the preparation is a caching
/// transformation, never a numerical one.
///
/// The session is `Sync`: the cache sits behind a mutex that is held
/// only for lookups/insertions (never during a GEMM), so concurrent
/// request threads can serve from one session.
///
/// ```
/// use mirage_core::Mirage;
/// use mirage_tensor::{Tensor, GemmEngine};
///
/// let mirage = Mirage::paper_default();
/// let session = mirage.inference_session();
/// let weight = Tensor::full(&[32, 8], 0.5);
/// session.load("fc1", &weight)?; // quantize once…
/// for _ in 0..3 {
///     let x = Tensor::full(&[4, 32], 0.25);
///     let y = session.infer("fc1", &x)?; // …serve many times
///     assert_eq!(y.data(), mirage.gemm_engine().gemm(&x, &weight)?.data());
/// }
/// # Ok::<(), mirage_tensor::TensorError>(())
/// ```
#[derive(Debug)]
pub struct InferenceSession {
    engine: ParallelGemm<BfpEngine>,
    cache: Mutex<HashMap<String, Arc<PreparedRhs>>>,
}

impl InferenceSession {
    /// Builds a session over the accelerator's parallel BFP engine with
    /// the automatic tile/thread heuristic.
    pub fn new(mirage: &Mirage) -> Self {
        InferenceSession {
            engine: mirage.parallel_gemm_engine(),
            cache: Mutex::new(HashMap::new()),
        }
    }

    /// Builds a session with an explicit [`TileConfig`] (pin thread
    /// counts in benchmarks, force serial execution in baselines).
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::InvalidGeometry`] when the tiling is
    /// invalid for the accelerator's BFP operating point (see
    /// [`TileConfig::validate`]).
    pub fn with_tile_config(mirage: &Mirage, config: TileConfig) -> Result<Self> {
        Ok(InferenceSession {
            engine: mirage.parallel_gemm_engine_with(config)?,
            cache: Mutex::new(HashMap::new()),
        })
    }

    /// Prepares (quantizes) a weight matrix and caches it under `layer`,
    /// replacing any previous weight for that key. This is the only
    /// session operation that runs the quantizer on the weight side.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::RankMismatch`] unless the weight is a
    /// rank-2 matrix.
    pub fn load(&self, layer: impl Into<String>, weight: &Tensor) -> Result<()> {
        let prepared = Arc::new(self.engine.prepare(weight)?);
        self.cache
            .lock()
            .expect("weight cache poisoned")
            .insert(layer.into(), prepared);
        Ok(())
    }

    /// The cached preparation for `layer`, if loaded.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::InvalidGeometry`] naming the layer when
    /// nothing is loaded under that key.
    fn cached(&self, layer: &str) -> Result<Arc<PreparedRhs>> {
        self.cache
            .lock()
            .expect("weight cache poisoned")
            .get(layer)
            .cloned()
            .ok_or_else(|| {
                TensorError::InvalidGeometry(format!(
                    "no prepared weight loaded for layer {layer:?}; call \
                     InferenceSession::load first"
                ))
            })
    }

    /// One inference GEMM `x · W` against the cached weight for `layer`.
    /// Only the activation side touches the quantizer; bit-identical to
    /// `Mirage::gemm_engine().gemm(x, weight)`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::InvalidGeometry`] when `layer` has no
    /// loaded weight, and the usual shape-validation errors.
    pub fn infer(&self, layer: &str, x: &Tensor) -> Result<Tensor> {
        let prepared = self.cached(layer)?;
        self.engine.gemm_prepared(x, &prepared)
    }

    /// Batched inference against the cached weight for `layer`: the
    /// whole batch runs inside one thread scope (see
    /// [`ParallelGemm::gemm_batch_prepared`]), and — unlike
    /// [`Mirage::infer_batch`] — repeated batches never re-prepare the
    /// weight.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::InvalidGeometry`] when `layer` has no
    /// loaded weight; propagates per-item shape errors (the whole batch
    /// fails if any item does).
    pub fn infer_batch(&self, layer: &str, inputs: &[Tensor]) -> Result<Vec<Tensor>> {
        let prepared = self.cached(layer)?;
        self.engine.gemm_batch_prepared(inputs, &prepared)
    }

    /// Convenience for serving loops that carry the weight alongside the
    /// activations: uses the cached preparation when `layer` is already
    /// loaded, preparing and caching it on first use. The session models
    /// **static** weights — passing a weight whose shape differs from
    /// the cached one is an error (reload explicitly via
    /// [`InferenceSession::load`] to update a weight).
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] when `weight`'s shape
    /// disagrees with the cached preparation for `layer`, plus the usual
    /// shape-validation errors.
    pub fn infer_with(&self, layer: &str, x: &Tensor, weight: &Tensor) -> Result<Tensor> {
        if let Ok(prepared) = self.cached(layer) {
            if prepared.raw().shape() != weight.shape() {
                return Err(TensorError::ShapeMismatch {
                    left: prepared.raw().shape().to_vec(),
                    right: weight.shape().to_vec(),
                });
            }
            return self.engine.gemm_prepared(x, &prepared);
        }
        self.load(layer, weight)?;
        self.infer(layer, x)
    }

    /// Whether a weight is loaded under `layer`.
    pub fn contains(&self, layer: &str) -> bool {
        self.cache
            .lock()
            .expect("weight cache poisoned")
            .contains_key(layer)
    }

    /// Number of cached layer weights.
    pub fn len(&self) -> usize {
        self.cache.lock().expect("weight cache poisoned").len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drops the cached weight for `layer`, returning whether one was
    /// present.
    pub fn evict(&self, layer: &str) -> bool {
        self.cache
            .lock()
            .expect("weight cache poisoned")
            .remove(layer)
            .is_some()
    }

    /// Drops every cached weight.
    pub fn clear(&self) {
        self.cache.lock().expect("weight cache poisoned").clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn session() -> (Mirage, InferenceSession) {
        let mirage = Mirage::paper_default();
        let session = mirage.inference_session();
        (mirage, session)
    }

    #[test]
    fn infer_is_bit_identical_to_unprepared_engine() {
        let (mirage, session) = session();
        let mut rng = rand::rngs::StdRng::seed_from_u64(200);
        let weight = Tensor::randn(&[48, 12], 1.0, &mut rng);
        session.load("fc", &weight).unwrap();
        let serial = mirage.gemm_engine();
        for _ in 0..3 {
            let x = Tensor::randn(&[9, 48], 1.0, &mut rng);
            assert_eq!(
                session.infer("fc", &x).unwrap().data(),
                serial.gemm(&x, &weight).unwrap().data()
            );
        }
    }

    #[test]
    fn infer_batch_matches_mirage_infer_batch() {
        let (mirage, session) = session();
        let mut rng = rand::rngs::StdRng::seed_from_u64(201);
        let weight = Tensor::randn(&[32, 8], 1.0, &mut rng);
        session.load("fc", &weight).unwrap();
        let inputs: Vec<Tensor> = (0..5)
            .map(|_| Tensor::randn(&[6, 32], 1.0, &mut rng))
            .collect();
        let cached = session.infer_batch("fc", &inputs).unwrap();
        let direct = mirage.infer_batch(&inputs, &weight).unwrap();
        for (c, d) in cached.iter().zip(&direct) {
            assert_eq!(c.data(), d.data());
        }
        // Empty batches are well-formed.
        assert!(session.infer_batch("fc", &[]).unwrap().is_empty());
    }

    #[test]
    fn missing_layer_is_an_error() {
        let (_mirage, session) = session();
        let err = session
            .infer("absent", &Tensor::zeros(&[2, 2]))
            .unwrap_err();
        assert!(err.to_string().contains("absent"), "{err}");
    }

    #[test]
    fn infer_with_caches_on_first_use_and_pins_shape() {
        let (mirage, session) = session();
        let mut rng = rand::rngs::StdRng::seed_from_u64(202);
        let weight = Tensor::randn(&[24, 6], 1.0, &mut rng);
        let x = Tensor::randn(&[4, 24], 1.0, &mut rng);
        assert!(session.is_empty());
        let y = session.infer_with("fc", &x, &weight).unwrap();
        assert_eq!(session.len(), 1);
        assert_eq!(
            y.data(),
            mirage.gemm_engine().gemm(&x, &weight).unwrap().data()
        );
        // Same key, same shape: served from cache.
        session.infer_with("fc", &x, &weight).unwrap();
        // Same key, different shape: refused, not silently requantized.
        assert!(matches!(
            session.infer_with("fc", &x, &Tensor::zeros(&[24, 7])),
            Err(TensorError::ShapeMismatch { .. })
        ));
    }

    #[test]
    fn load_replaces_and_evict_removes() {
        let (mirage, session) = session();
        let mut rng = rand::rngs::StdRng::seed_from_u64(203);
        let w1 = Tensor::randn(&[16, 4], 1.0, &mut rng);
        let w2 = Tensor::randn(&[16, 4], 1.0, &mut rng);
        let x = Tensor::randn(&[3, 16], 1.0, &mut rng);
        session.load("fc", &w1).unwrap();
        session.load("fc", &w2).unwrap(); // weight update
        assert_eq!(
            session.infer("fc", &x).unwrap().data(),
            mirage.gemm_engine().gemm(&x, &w2).unwrap().data()
        );
        assert!(session.evict("fc"));
        assert!(!session.evict("fc"));
        assert!(!session.contains("fc"));
        session.load("a", &w1).unwrap();
        session.load("b", &w2).unwrap();
        session.clear();
        assert!(session.is_empty());
    }

    #[test]
    fn explicit_tile_config_is_validated() {
        let mirage = Mirage::paper_default();
        let mut bad = TileConfig::auto();
        bad.tile_k = 24; // not a multiple of g = 16
        assert!(InferenceSession::with_tile_config(&mirage, bad).is_err());
        let session = InferenceSession::with_tile_config(&mirage, TileConfig::serial()).unwrap();
        let weight = Tensor::full(&[16, 4], 0.5);
        session.load("fc", &weight).unwrap();
        assert_eq!(
            session
                .infer("fc", &Tensor::ones(&[2, 16]))
                .unwrap()
                .shape(),
            &[2, 4]
        );
    }
}
