//! Tile-level latency models (paper §V-B1, Fig. 7).

use crate::config::MirageConfig;
use crate::dataflow::{Dataflow, DataflowPolicy, TileGrid};
use crate::workload::{GemmShape, TrainingGemm, Workload, WorkloadLayer};

/// A systolic-array configuration for the baseline comparisons.
///
/// The paper keeps the 16×32 tile fixed and replicates whole arrays
/// when scaling (§VI-C: larger single arrays suffer long tile-load
/// latencies).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SystolicConfig {
    /// Number of replicated arrays.
    pub arrays: usize,
    /// Array height (stationary rows; paper tile: 32).
    pub rows: usize,
    /// Array width (stationary columns; paper tile: 16).
    pub width: usize,
    /// Clock frequency in Hz (per data format, Table II).
    pub clock_hz: f64,
}

impl SystolicConfig {
    /// A single 32×16 array at the given clock.
    pub fn single(clock_hz: f64) -> Self {
        SystolicConfig {
            arrays: 1,
            rows: 32,
            width: 16,
            clock_hz,
        }
    }

    /// Total MAC units.
    pub fn macs(&self) -> usize {
        self.arrays * self.rows * self.width
    }
}

/// Latency of one GEMM on Mirage under a dataflow.
///
/// Tiles are spread over the RNS-MMVMUs; each tile costs one
/// phase-shifter reprogramming stall (5 ns) plus one photonic cycle
/// (0.1 ns) per streamed vector.
pub fn mirage_gemm_latency_s(cfg: &MirageConfig, shape: GemmShape, df: Dataflow) -> f64 {
    assert!(
        Dataflow::MIRAGE.contains(&df),
        "mirage does not support {df} (phase shifters would reprogram every cycle)"
    );
    let grid = TileGrid::for_gemm(shape, df, cfg.rows, cfg.g);
    let rounds = grid.tiles.div_ceil(cfg.num_units);
    rounds as f64 * (cfg.reprogram_s() + grid.streamed as f64 * cfg.cycle_s())
}

/// Latency of one GEMM on a systolic array under a dataflow.
///
/// Per tile: loading the stationary operand (one row per cycle), then
/// streaming with pipeline fill/drain of `rows + width` cycles; DF3
/// additionally writes the stationary outputs back.
pub fn systolic_gemm_latency_s(sa: &SystolicConfig, shape: GemmShape, df: Dataflow) -> f64 {
    let grid = TileGrid::for_gemm(shape, df, sa.rows, sa.width);
    let rounds = grid.tiles.div_ceil(sa.arrays);
    let load = sa.rows;
    let fill_drain = sa.rows + sa.width;
    let writeback = if df == Dataflow::Df3 { sa.rows } else { 0 };
    let cycles_per_tile = load + grid.streamed + fill_drain + writeback;
    rounds as f64 * cycles_per_tile as f64 / sa.clock_hz
}

/// The latency of each of the three training GEMMs of one layer under a
/// chosen per-GEMM dataflow assignment.
#[derive(Debug, Clone, PartialEq)]
pub struct LayerLatency {
    /// Layer name.
    pub name: String,
    /// `(kind, chosen dataflow, seconds)` per training GEMM.
    pub gemms: Vec<(TrainingGemm, Dataflow, f64)>,
}

impl LayerLatency {
    /// Total seconds across the three GEMMs.
    pub fn total_s(&self) -> f64 {
        self.gemms.iter().map(|g| g.2).sum()
    }
}

/// Generic per-GEMM latency function for policy evaluation.
type GemmLatencyFn<'a> = dyn Fn(GemmShape, Dataflow) -> f64 + 'a;

fn schedule(
    layers: &[WorkloadLayer],
    allowed: &[Dataflow],
    policy: DataflowPolicy,
    latency: &GemmLatencyFn<'_>,
) -> Vec<LayerLatency> {
    let pick_fixed = |df: Dataflow| -> Vec<LayerLatency> {
        layers
            .iter()
            .map(|l| LayerLatency {
                name: l.name.clone(),
                gemms: TrainingGemm::ALL
                    .iter()
                    .map(|&k| (k, df, latency(l.gemm(k), df)))
                    .collect(),
            })
            .collect()
    };
    match policy {
        DataflowPolicy::Fixed(df) => {
            assert!(allowed.contains(&df), "dataflow {df} not supported here");
            pick_fixed(df)
        }
        DataflowPolicy::Opt1 => {
            // Best dataflow per GEMM kind, fixed across layers.
            let best_for_kind = |kind: TrainingGemm| -> Dataflow {
                *allowed
                    .iter()
                    .min_by(|&&a, &&b| {
                        let ta: f64 = layers.iter().map(|l| latency(l.gemm(kind), a)).sum();
                        let tb: f64 = layers.iter().map(|l| latency(l.gemm(kind), b)).sum();
                        ta.partial_cmp(&tb).expect("finite latencies")
                    })
                    .expect("non-empty dataflow set")
            };
            let choice: Vec<(TrainingGemm, Dataflow)> = TrainingGemm::ALL
                .iter()
                .map(|&k| (k, best_for_kind(k)))
                .collect();
            layers
                .iter()
                .map(|l| LayerLatency {
                    name: l.name.clone(),
                    gemms: choice
                        .iter()
                        .map(|&(k, df)| (k, df, latency(l.gemm(k), df)))
                        .collect(),
                })
                .collect()
        }
        DataflowPolicy::Opt2 => layers
            .iter()
            .map(|l| LayerLatency {
                name: l.name.clone(),
                gemms: TrainingGemm::ALL
                    .iter()
                    .map(|&k| {
                        let (df, t) = allowed
                            .iter()
                            .map(|&df| (df, latency(l.gemm(k), df)))
                            .min_by(|a, b| a.1.partial_cmp(&b.1).expect("finite"))
                            .expect("non-empty dataflow set");
                        (k, df, t)
                    })
                    .collect(),
            })
            .collect(),
    }
}

/// Per-layer training-step latencies on Mirage.
pub fn mirage_layer_latencies(
    cfg: &MirageConfig,
    workload: &Workload,
    policy: DataflowPolicy,
) -> Vec<LayerLatency> {
    schedule(&workload.layers, &Dataflow::MIRAGE, policy, &|shape, df| {
        mirage_gemm_latency_s(cfg, shape, df)
    })
}

/// Total training-step latency on Mirage.
pub fn mirage_step_latency_s(
    cfg: &MirageConfig,
    workload: &Workload,
    policy: DataflowPolicy,
) -> f64 {
    mirage_layer_latencies(cfg, workload, policy)
        .iter()
        .map(LayerLatency::total_s)
        .sum()
}

/// Per-layer training-step latencies on a systolic array.
pub fn systolic_layer_latencies(
    sa: &SystolicConfig,
    workload: &Workload,
    policy: DataflowPolicy,
) -> Vec<LayerLatency> {
    schedule(
        &workload.layers,
        &Dataflow::SYSTOLIC,
        policy,
        &|shape, df| systolic_gemm_latency_s(sa, shape, df),
    )
}

/// Total training-step latency on a systolic array.
pub fn systolic_step_latency_s(
    sa: &SystolicConfig,
    workload: &Workload,
    policy: DataflowPolicy,
) -> f64 {
    systolic_layer_latencies(sa, workload, policy)
        .iter()
        .map(LayerLatency::total_s)
        .sum()
}

/// Inference (forward-only) latency on Mirage.
pub fn mirage_inference_latency_s(cfg: &MirageConfig, workload: &Workload) -> f64 {
    workload
        .layers
        .iter()
        .map(|l| {
            Dataflow::MIRAGE
                .iter()
                .map(|&df| mirage_gemm_latency_s(cfg, l.forward, df))
                .fold(f64::INFINITY, f64::min)
        })
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> MirageConfig {
        MirageConfig::default()
    }

    fn layer(m: usize, k: usize, n: usize) -> WorkloadLayer {
        WorkloadLayer::new("l", m, k, n)
    }

    #[test]
    fn single_tile_gemm_latency() {
        // 32x16 stationary fits one tile: 5 ns + n * 0.1 ns on one unit.
        let t = mirage_gemm_latency_s(&cfg(), GemmShape::new(32, 16, 1000), Dataflow::Df1);
        assert!((t - (5e-9 + 1000.0 * 0.1e-9)).abs() < 1e-15);
    }

    #[test]
    fn tiles_round_over_units() {
        // 9 tiles over 8 units -> 2 rounds.
        let shape = GemmShape::new(32 * 9, 16, 100);
        let t = mirage_gemm_latency_s(&cfg(), shape, Dataflow::Df1);
        assert!((t - 2.0 * (5e-9 + 100.0 * 0.1e-9)).abs() < 1e-15);
    }

    #[test]
    #[should_panic(expected = "does not support")]
    fn mirage_rejects_df3() {
        mirage_gemm_latency_s(&cfg(), GemmShape::new(1, 1, 1), Dataflow::Df3);
    }

    #[test]
    fn df_choice_matters_for_rectangular_gemms() {
        // m >> n: DF2 keeps the small operand stationary and streams m.
        let shape = GemmShape::new(10_000, 16, 32);
        let t1 = mirage_gemm_latency_s(&cfg(), shape, Dataflow::Df1);
        let t2 = mirage_gemm_latency_s(&cfg(), shape, Dataflow::Df2);
        // DF1: 313 tiles / 8 units = 40 rounds of (5 + 3.2) ns.
        // DF2: 1 tile, stream 10000 -> ~1 µs.
        assert!(t2 > t1, "t1 = {t1}, t2 = {t2}");
        // And the reverse for n >> m: DF2 splits the huge operand into
        // many tiles that the 8 units chew in parallel, beating DF1's
        // single tile streaming 10k vectors through one unit.
        let shape_r = GemmShape::new(32, 16, 10_000);
        let r1 = mirage_gemm_latency_s(&cfg(), shape_r, Dataflow::Df1);
        let r2 = mirage_gemm_latency_s(&cfg(), shape_r, Dataflow::Df2);
        assert!(
            r1 > r2,
            "unit-level parallelism should win: r1 = {r1}, r2 = {r2}"
        );
    }

    #[test]
    fn opt2_never_worse_than_fixed() {
        let w = Workload::new(
            "t",
            1,
            vec![
                layer(96, 363, 3025),
                layer(256, 1200, 729),
                layer(10, 4096, 256),
            ],
        );
        let c = cfg();
        let t_opt2 = mirage_step_latency_s(&c, &w, DataflowPolicy::Opt2);
        for df in Dataflow::MIRAGE {
            let t_fixed = mirage_step_latency_s(&c, &w, DataflowPolicy::Fixed(df));
            assert!(t_opt2 <= t_fixed + 1e-18, "{df}");
        }
        let t_opt1 = mirage_step_latency_s(&c, &w, DataflowPolicy::Opt1);
        assert!(t_opt2 <= t_opt1 + 1e-18);
    }

    #[test]
    fn systolic_latency_includes_load_and_drain() {
        let sa = SystolicConfig::single(1e9);
        let t = systolic_gemm_latency_s(&sa, GemmShape::new(32, 16, 100), Dataflow::Df1);
        // 1 tile: 32 load + 100 stream + 48 fill/drain = 180 cycles @ 1 GHz.
        assert!((t - 180e-9).abs() < 1e-15);
    }

    #[test]
    fn df3_writeback_charged() {
        let sa = SystolicConfig::single(1e9);
        let t3 = systolic_gemm_latency_s(&sa, GemmShape::new(32, 100, 16), Dataflow::Df3);
        // 1 tile: 32 + 100 + 48 + 32 = 212 cycles.
        assert!((t3 - 212e-9).abs() < 1e-15);
    }

    #[test]
    fn more_arrays_reduce_latency() {
        let w = Workload::new("t", 1, vec![layer(512, 512, 512)]);
        let one = SystolicConfig::single(1e9);
        let eight = SystolicConfig {
            arrays: 8,
            ..SystolicConfig::single(1e9)
        };
        let t1 = systolic_step_latency_s(&one, &w, DataflowPolicy::Opt2);
        let t8 = systolic_step_latency_s(&eight, &w, DataflowPolicy::Opt2);
        assert!(t8 < t1 / 6.0, "t1 = {t1}, t8 = {t8}");
    }

    #[test]
    fn mirage_is_much_faster_than_one_systolic_array() {
        // 10 GHz photonics + 4096 MAC slots vs 512 MACs at 1 GHz.
        let w = Workload::new("t", 1, vec![layer(1024, 1024, 1024)]);
        let tm = mirage_step_latency_s(&cfg(), &w, DataflowPolicy::Opt2);
        let ts = systolic_step_latency_s(&SystolicConfig::single(1e9), &w, DataflowPolicy::Opt2);
        assert!(ts / tm > 20.0, "ratio = {}", ts / tm);
    }

    #[test]
    fn inference_latency_is_forward_only() {
        let w = Workload::new("t", 1, vec![layer(64, 64, 64), layer(64, 64, 64)]);
        let inf = mirage_inference_latency_s(&cfg(), &w);
        let step = mirage_step_latency_s(&cfg(), &w, DataflowPolicy::Opt2);
        assert!(inf < step / 2.0);
    }
}
