//! Compiled inference plans: freeze a network once, serve it forever.
//!
//! Training iterates `forward`/`backward` on mutable layers; serving
//! multiplies millions of requests against **static** weights. The eager
//! [`Sequential::forward`] path pays training-shaped costs on every
//! request — `Dense` re-transposes and re-quantizes its weight, every
//! layer clones activations into its backward cache. Compiling closes
//! that gap, mirroring the split the Mirage paper draws between
//! training-time quantization and static-weight inference (Table III
//! serves batch 1–128 against fixed weights):
//!
//! - [`Layer::compile`] freezes one layer into an immutable
//!   [`PlanStep`]: every GEMM weight is transposed and prepared
//!   **exactly once** (via [`Engines::prepare_forward`], i.e.
//!   [`mirage_tensor::GemmEngine::prepare`]), so steady-state requests
//!   run zero weight-side quantization;
//! - [`CompiledNetwork`] strings the steps together and serves
//!   [`run`](CompiledNetwork::run) / [`run_batch`](CompiledNetwork::run_batch)
//!   from `&self`. The plan is `Sync` with **no interior locking on the
//!   hot path**: concurrent request threads share one compiled model and
//!   never contend on a mutex during a GEMM;
//! - activations ping-pong through a per-thread
//!   [`ActivationScratch`], so a serving thread's steady state recycles
//!   the same few buffers instead of allocating per request.
//!
//! **Bit-identity contract:** compilation is a caching transformation,
//! never a numerical one. For every layer, the compiled step performs
//! the same arithmetic in the same order as the eager forward pass, and
//! prepared GEMMs are bit-identical to unprepared ones by the
//! [`mirage_tensor::GemmEngine::prepare`] contract — so
//! `CompiledNetwork::run` equals `Sequential::forward` to the last bit,
//! on every engine. The cross-crate grid tests enforce this across
//! exact / BFP / RNS-BFP / photonic engines, batch sizes and tilings.
//!
//! Layers whose forward pass is *training-only* behaviour do not
//! silently degrade: an active `Dropout` or a training-mode
//! `BatchNorm2d` fails compilation with [`NnError::NotCompilable`]
//! (switch them to inference mode first), and [`CompiledNetwork`]
//! construction rejects the whole network rather than falling back to
//! the eager path behind the caller's back.
//!
//! ```
//! use mirage_nn::{Sequential, layers::{Dense, Relu}, Engines};
//! use mirage_tensor::{Tensor, engines::ExactEngine};
//! use rand::SeedableRng;
//!
//! let mut rng = rand::rngs::StdRng::seed_from_u64(7);
//! let mut net = Sequential::new();
//! net.push(Dense::new(4, 8, &mut rng));
//! net.push(Relu::new());
//! net.push(Dense::new(8, 2, &mut rng));
//!
//! let engines = Engines::uniform(ExactEngine);
//! let x = Tensor::ones(&[3, 4]);
//! let eager = net.forward(&x, &engines)?;
//!
//! let compiled = net.compile(&engines)?; // weights prepared once
//! assert_eq!(compiled.run(&x)?.data(), eager.data()); // bit-identical
//! # Ok::<(), mirage_nn::NnError>(())
//! ```

use crate::engines::Engines;
use crate::layers::Layer;
use crate::{NnError, Result};
use mirage_tensor::conv::{
    conv2d_forward_prepared, global_avgpool2d, maxpool2d_forward, Conv2dGeometry,
};
use mirage_tensor::engines::Epilogue;
use mirage_tensor::scratch::ActivationScratch;
use mirage_tensor::{GemmEngine, PreparedRhs, Tensor};
use std::sync::{Arc, Mutex};

/// One immutable step of a compiled inference plan.
///
/// Steps are `Send + Sync` and run with `&self`: a compiled model is
/// shared freely across serving threads. Each thread passes its own
/// [`ActivationScratch`] so steps can recycle buffers without locking.
pub trait PlanStep: Send + Sync {
    /// Short name for debugging (usually the source layer's name).
    fn name(&self) -> &'static str;

    /// Executes the step on one activation tensor.
    ///
    /// # Errors
    ///
    /// Propagates tensor/engine errors; shape validation matches the
    /// eager layer's.
    fn run(&self, x: &Tensor, scratch: &mut ActivationScratch) -> Result<Tensor>;

    /// Whether this step is a pure identity (inference-mode dropout):
    /// [`CompiledNetwork`] elides such steps from the plan instead of
    /// deep-copying the activation through them on every request.
    fn is_identity(&self) -> bool {
        false
    }

    /// Whether this step is exactly an elementwise ReLU
    /// (`v.max(0.0)`) — the trigger for the plan-level fusion peephole:
    /// when a ReLU step directly follows a step whose
    /// [`fuse_relu`](PlanStep::fuse_relu) returns `Some`, the pair is
    /// collapsed into the fused step.
    fn is_relu(&self) -> bool {
        false
    }

    /// Returns a copy of this step with an elementwise ReLU fused onto
    /// its tail, or `None` when the step has no fused form (the
    /// default). The contract is bit-identity: the fused step's output
    /// must equal this step followed by `v.max(0.0)` over every
    /// element, to the last bit. Fusing must be **idempotent** — fusing
    /// an already-fused step returns an equivalent step, since
    /// `max(max(v, 0), 0) == max(v, 0)`.
    fn fuse_relu(&self) -> Option<Arc<dyn PlanStep>> {
        None
    }

    /// Returns a copy of this step with any internally fused epilogue
    /// split back into separate whole-activation sweeps, or `None` when
    /// the step has nothing fused (the default). This is the baseline
    /// side of the fused-vs-unfused comparison: a dense layer's unfused
    /// form runs the bare GEMM and then a standalone bias sweep, the
    /// way the eager forward pass does, instead of folding the bias
    /// into the kernel's output write. Bit-identity is required — the
    /// unfused form must produce the same bits, only slower.
    fn unfuse_epilogue(&self) -> Option<Arc<dyn PlanStep>> {
        None
    }

    /// Splits this step into tensor-parallel stages over `shards`
    /// simulated accelerator instances, or `None` when the step has no
    /// sharded form and a [`ShardPlan`](crate::shard::ShardPlan)
    /// replicates it instead.
    ///
    /// Each returned [`ShardedStep`](crate::shard::ShardedStep) stage
    /// replaces this step in the plan, in order. The contract is the
    /// same bit-identity bar as compilation itself: the staged
    /// computation must equal this step's [`run`](PlanStep::run) to the
    /// last bit. GEMM-bearing steps therefore only shard when their
    /// engine opts into
    /// [`tile_invariant`](mirage_tensor::GemmEngine::tile_invariant),
    /// split **output columns only** (`k` is never split), and combine
    /// by fixed-order concatenation.
    ///
    /// # Errors
    ///
    /// Propagates preparation-slicing errors from the engine.
    fn shard(&self, shards: usize) -> Result<Option<Vec<crate::shard::ShardedStep>>> {
        let _ = shards;
        Ok(None)
    }
}

/// A frozen, immutable execution plan for a [`Sequential`] network.
///
/// Built by [`Sequential::compile`] (or `Mirage::compile` in
/// `mirage-core`); see the [module docs](self) for the contract.
///
/// [`Sequential`]: crate::Sequential
pub struct CompiledNetwork {
    steps: Vec<Arc<dyn PlanStep>>,
    pub(crate) schedule: Option<crate::shard::PipelineSchedule>,
}

impl CompiledNetwork {
    /// Compiles each layer in order, failing fast — with the offending
    /// layer named in the error — rather than silently falling back to
    /// eager execution. Pure identity steps (inference-mode dropout)
    /// are elided from the plan: every layer must still *compile*, but
    /// serving skips the no-op activation copies.
    pub(crate) fn from_layers(layers: &[Box<dyn Layer>], engines: &Engines) -> Result<Self> {
        Self::from_layers_with(layers, engines, true)
    }

    /// [`CompiledNetwork::from_layers`] with the epilogue-fusion
    /// peephole switchable: after identity elision, a step that
    /// [`is_relu`](PlanStep::is_relu) directly following a step with a
    /// fused form ([`fuse_relu`](PlanStep::fuse_relu)) is folded into
    /// it — `dense, relu → dense+relu`, visible in
    /// [`step_names`](CompiledNetwork::step_names). Fusion is
    /// bit-identical by the `fuse_relu` contract; `fuse: false` keeps
    /// the unfused step sequence (the baseline side of the
    /// fused-vs-unfused bench comparison).
    pub(crate) fn from_layers_with(
        layers: &[Box<dyn Layer>],
        engines: &Engines,
        fuse: bool,
    ) -> Result<Self> {
        let mut steps: Vec<Arc<dyn PlanStep>> = Vec::with_capacity(layers.len());
        for layer in layers {
            let mut step: Arc<dyn PlanStep> = Arc::from(layer.compile(engines)?);
            if step.is_identity() {
                continue;
            }
            if !fuse {
                // Baseline plans also forgo the in-kernel bias fold:
                // bare GEMM plus separate sweeps, like the eager pass.
                if let Some(unfused) = step.unfuse_epilogue() {
                    step = unfused;
                }
            }
            if fuse && step.is_relu() {
                if let Some(fused) = steps.last().and_then(|prev| prev.fuse_relu()) {
                    if let Some(slot) = steps.last_mut() {
                        *slot = fused;
                        continue;
                    }
                }
            }
            steps.push(step);
        }
        Ok(CompiledNetwork {
            steps,
            schedule: None,
        })
    }

    /// Builds a plan directly from shared steps — how derived plans
    /// (sharded, pipelined) rewrap steps without copying step state.
    pub(crate) fn from_steps(steps: Vec<Arc<dyn PlanStep>>) -> Self {
        CompiledNetwork {
            steps,
            schedule: None,
        }
    }

    /// The shared steps, in execution order.
    pub(crate) fn steps(&self) -> &[Arc<dyn PlanStep>] {
        &self.steps
    }

    /// Runs one request with a fresh scratch arena. For serving loops,
    /// prefer [`CompiledNetwork::run_with`] with a per-thread scratch so
    /// steady-state requests reuse their activation buffers.
    ///
    /// # Errors
    ///
    /// Propagates step errors (shape validation matches the eager
    /// forward pass).
    pub fn run(&self, x: &Tensor) -> Result<Tensor> {
        self.run_with(x, &mut ActivationScratch::new())
    }

    /// Runs one request, ping-ponging intermediate activations through
    /// the caller's scratch arena: each step's dead input buffer is
    /// recycled for a later step's output, so a warmed-up serving
    /// thread cycles the same few allocations request after request.
    ///
    /// # Errors
    ///
    /// Propagates step errors.
    pub fn run_with(&self, x: &Tensor, scratch: &mut ActivationScratch) -> Result<Tensor> {
        run_steps(&self.steps, x, scratch)
    }

    /// Runs a batch of requests through one shared scratch arena,
    /// bit-identical to mapping [`CompiledNetwork::run`] over the items.
    ///
    /// Plans carrying a pipeline schedule (see
    /// [`with_pipeline`](CompiledNetwork::with_pipeline)) execute the
    /// batch as micro-batches flowing through the stage splits instead
    /// of item-by-item — same arithmetic per item, same results to the
    /// bit, different interleaving.
    ///
    /// # Errors
    ///
    /// Propagates step errors; the whole batch fails if any item does.
    pub fn run_batch(&self, inputs: &[Tensor]) -> Result<Vec<Tensor>> {
        match &self.schedule {
            Some(schedule) => {
                crate::shard::pipeline_run_batch(&self.steps, schedule, inputs).map(|(y, _)| y)
            }
            None => {
                let mut scratch = ActivationScratch::new();
                inputs
                    .iter()
                    .map(|x| self.run_with(x, &mut scratch))
                    .collect()
            }
        }
    }

    /// Number of plan steps (one per source layer).
    pub fn len(&self) -> usize {
        self.steps.len()
    }

    /// Whether the plan has no steps (an empty network: `run` is the
    /// identity).
    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }

    /// The step names, in execution order.
    pub fn step_names(&self) -> Vec<&'static str> {
        self.steps.iter().map(|s| s.name()).collect()
    }
}

impl std::fmt::Debug for CompiledNetwork {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "CompiledNetwork{:?}", self.step_names())
    }
}

/// Threads one activation through a step slice, ping-ponging dead
/// buffers into the scratch arena — the core serving loop, shared by
/// [`CompiledNetwork::run_with`] and the pipeline stage executor.
pub(crate) fn run_steps(
    steps: &[Arc<dyn PlanStep>],
    x: &Tensor,
    scratch: &mut ActivationScratch,
) -> Result<Tensor> {
    let mut cur: Option<Tensor> = None;
    for step in steps {
        let next = step.run(cur.as_ref().unwrap_or(x), scratch)?;
        if let Some(dead) = cur.take() {
            scratch.recycle(dead.into_data());
        }
        cur = Some(next);
    }
    Ok(cur.unwrap_or_else(|| x.clone()))
}

/// Escape hatch for custom layers: wraps a layer's **eager** forward
/// pass as a plan step, serializing calls through a mutex.
///
/// This is what "default = wrap the eager path" costs: the layer keeps
/// its per-call work (weight re-quantization included) and every thread
/// contends on the lock — so the built-in layers all compile to real
/// prepared steps instead, and nothing constructs an `EagerStep`
/// implicitly. Use it from a custom `Layer::compile` when the layer is
/// inference-safe but has no compiled form yet:
///
/// ```
/// use mirage_nn::compile::{EagerStep, PlanStep};
/// use mirage_nn::layers::Relu;
/// use mirage_nn::Engines;
/// use mirage_tensor::{engines::ExactEngine, Tensor};
///
/// let engines = Engines::uniform(ExactEngine);
/// let step = EagerStep::boxed(Relu::new(), &engines);
/// let y = step.run(
///     &Tensor::from_vec(vec![-1.0, 2.0], &[1, 2])?,
///     &mut mirage_tensor::ActivationScratch::new(),
/// )?;
/// assert_eq!(y.data(), &[0.0, 2.0]);
/// # Ok::<(), mirage_nn::NnError>(())
/// ```
pub struct EagerStep {
    name: &'static str,
    layer: Mutex<Box<dyn Layer>>,
    engines: Engines,
}

impl EagerStep {
    /// Wraps `layer`'s eager forward pass (the layer is moved in; hand
    /// over a clone to keep training the original).
    pub fn boxed(layer: impl Layer + 'static, engines: &Engines) -> Box<dyn PlanStep> {
        Box::new(EagerStep {
            name: layer.name(),
            layer: Mutex::new(Box::new(layer)),
            engines: engines.clone(),
        })
    }
}

impl PlanStep for EagerStep {
    fn name(&self) -> &'static str {
        self.name
    }

    fn run(&self, x: &Tensor, _scratch: &mut ActivationScratch) -> Result<Tensor> {
        // Unlike the session caches, a poisoned lock here is NOT
        // recoverable: a panic mid-`forward` can leave the wrapped
        // layer's own state inconsistent, so the step reports the
        // error instead of serving from (or panicking on) it.
        match self.layer.lock() {
            Ok(mut layer) => layer.forward(x, &self.engines),
            Err(_) => Err(NnError::PoisonedStep {
                layer: self.name.to_string(),
            }),
        }
    }
}

// ───────────────────────── GEMM-bearing steps ──────────────────────────

/// `Dense` frozen: `y = x · prepared(Wᵀ) + b`, with an optionally fused
/// trailing ReLU. The weight transpose and the engine's B-side
/// quantization happened once at compile time; per request only the
/// activation side touches the quantizer, and the GEMM output lands in
/// a recycled scratch buffer. The bias (and the ReLU, when the fusion
/// peephole folded a following `ReluStep` in) is applied by the
/// engine's fused-[`Epilogue`] entry point — one pass over the
/// still-hot output block, bit-identical to the separate sweeps by the
/// [`mirage_tensor::GemmEngine::gemm_prepared_epilogue_into`] contract.
pub(crate) struct DenseStep {
    engine: Arc<dyn GemmEngine>,
    prepared: PreparedRhs,
    bias: Vec<f32>,
    relu: bool,
    /// `true` (the default) routes through the engine's fused
    /// [`Epilogue`] entry point so bias/ReLU fold into the kernel's
    /// output write; `false` (the [`unfuse_epilogue`]
    /// (PlanStep::unfuse_epilogue) baseline) runs the bare GEMM and a
    /// standalone bias sweep like the eager pass.
    fused_epilogue: bool,
}

impl DenseStep {
    pub(crate) fn new(engine: Arc<dyn GemmEngine>, prepared: PreparedRhs, bias: Vec<f32>) -> Self {
        DenseStep {
            engine,
            prepared,
            bias,
            relu: false,
            fused_epilogue: true,
        }
    }
}

impl PlanStep for DenseStep {
    fn name(&self) -> &'static str {
        if self.relu {
            "dense+relu"
        } else {
            "dense"
        }
    }

    fn run(&self, x: &Tensor, scratch: &mut ActivationScratch) -> Result<Tensor> {
        let mut out = scratch.take(x.shape().first().copied().unwrap_or(0) * self.bias.len());
        if self.fused_epilogue {
            let mut epilogue = Epilogue::none().with_bias(&self.bias);
            if self.relu {
                epilogue = epilogue.with_relu();
            }
            let (m, n) =
                self.engine
                    .gemm_prepared_epilogue_into(x, &self.prepared, &epilogue, &mut out)?;
            Ok(Tensor::from_vec(out, &[m, n])?)
        } else {
            // The unfused baseline: bare GEMM, then the same standalone
            // whole-activation bias sweep the eager forward pass runs.
            // Bit-identical to the fused path — an `f32` store
            // round-trips exactly, so adding the bias after the store
            // equals adding it to the accumulator before it.
            let (m, n) = self
                .engine
                .gemm_prepared_into(x, &self.prepared, &mut out)?;
            crate::layers::add_row_bias(&mut out, &self.bias);
            if self.relu {
                for v in out.iter_mut() {
                    *v = v.max(0.0);
                }
            }
            Ok(Tensor::from_vec(out, &[m, n])?)
        }
    }

    fn fuse_relu(&self) -> Option<Arc<dyn PlanStep>> {
        Some(Arc::new(DenseStep {
            engine: self.engine.clone(),
            prepared: self.prepared.clone(),
            bias: self.bias.clone(),
            relu: true,
            fused_epilogue: self.fused_epilogue,
        }))
    }

    fn unfuse_epilogue(&self) -> Option<Arc<dyn PlanStep>> {
        Some(Arc::new(DenseStep {
            engine: self.engine.clone(),
            prepared: self.prepared.clone(),
            bias: self.bias.clone(),
            relu: self.relu,
            fused_epilogue: false,
        }))
    }

    /// Column-shards the prepared weight: shard `i` owns a contiguous
    /// slice of output features cut from the shared preparation by
    /// [`GemmEngine::prepare_tile`], plus the matching bias slice. The
    /// fixed-order column concat equals the whole GEMM bit-exactly for
    /// tile-invariant engines — the same invariant the tiled parallel
    /// driver relies on, lifted to model level. A fused ReLU shards
    /// freely: it is elementwise, so applying it per column shard
    /// before the concat equals applying it after.
    fn shard(&self, shards: usize) -> Result<Option<Vec<crate::shard::ShardedStep>>> {
        use crate::shard::{column_ranges, slice_prepared, GemmShardPart, ShardedStep};
        if !self.engine.tile_invariant() {
            return Ok(None);
        }
        let mut parts: Vec<Box<dyn PlanStep>> = Vec::with_capacity(shards);
        for (c0, width) in column_ranges(self.prepared.n(), shards) {
            let tile = slice_prepared(&self.engine, &self.prepared, c0, width)?;
            parts.push(Box::new(GemmShardPart::new(
                "dense-shard",
                self.engine.clone(),
                tile,
                Some(self.bias[c0..c0 + width].to_vec()),
                self.relu,
            )));
        }
        Ok(Some(vec![ShardedStep::concat(self.name(), parts)?]))
    }
}

/// `Conv2d` frozen: the im2col GEMM runs against the weight matrix
/// prepared once at compile time ([`conv2d_forward_prepared`]).
pub(crate) struct Conv2dStep {
    engine: Arc<dyn GemmEngine>,
    prepared: PreparedRhs,
    geometry: Conv2dGeometry,
}

impl Conv2dStep {
    pub(crate) fn new(
        engine: Arc<dyn GemmEngine>,
        prepared: PreparedRhs,
        geometry: Conv2dGeometry,
    ) -> Self {
        Conv2dStep {
            engine,
            prepared,
            geometry,
        }
    }
}

impl PlanStep for Conv2dStep {
    fn name(&self) -> &'static str {
        "conv2d"
    }

    fn run(&self, x: &Tensor, _scratch: &mut ActivationScratch) -> Result<Tensor> {
        Ok(conv2d_forward_prepared(
            x,
            &self.prepared,
            &self.geometry,
            self.engine.as_ref(),
        )?)
    }
}

/// `SelfAttention` frozen: the four projection weights are prepared
/// once; the per-head score/context products are activation × activation
/// GEMMs (no static side), so they run exactly as the eager layer does.
pub(crate) struct SelfAttentionStep {
    engine: Arc<dyn GemmEngine>,
    seq: usize,
    dim: usize,
    heads: usize,
    wq_t: PreparedRhs,
    wk_t: PreparedRhs,
    wv_t: PreparedRhs,
    wo_t: PreparedRhs,
}

impl SelfAttentionStep {
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn new(
        engine: Arc<dyn GemmEngine>,
        seq: usize,
        dim: usize,
        heads: usize,
        wq_t: PreparedRhs,
        wk_t: PreparedRhs,
        wv_t: PreparedRhs,
        wo_t: PreparedRhs,
    ) -> Self {
        SelfAttentionStep {
            engine,
            seq,
            dim,
            heads,
            wq_t,
            wk_t,
            wv_t,
            wo_t,
        }
    }
}

impl PlanStep for SelfAttentionStep {
    fn name(&self) -> &'static str {
        "self-attention"
    }

    fn run(&self, x: &Tensor, _scratch: &mut ActivationScratch) -> Result<Tensor> {
        use crate::attention::{head_slice, head_unslice, softmax_rows};
        let rows = x.shape()[0];
        if !rows.is_multiple_of(self.seq) || x.shape()[1] != self.dim {
            return Err(NnError::Tensor(mirage_tensor::TensorError::ShapeMismatch {
                left: x.shape().to_vec(),
                right: vec![self.seq, self.dim],
            }));
        }
        let batch = rows / self.seq;
        let head_dim = self.dim / self.heads;
        let e = self.engine.as_ref();
        let q = e.gemm_prepared(x, &self.wq_t)?;
        let k = e.gemm_prepared(x, &self.wk_t)?;
        let v = e.gemm_prepared(x, &self.wv_t)?;

        let scale = 1.0 / (head_dim as f32).sqrt();
        let mut ctx = Tensor::zeros(&[rows, self.dim]);
        for b in 0..batch {
            for h in 0..self.heads {
                let qh = head_slice(&q, b, h, self.seq, head_dim);
                let kh = head_slice(&k, b, h, self.seq, head_dim);
                let vh = head_slice(&v, b, h, self.seq, head_dim);
                let scores = e.gemm(&qh, &kh.transpose2d()?)?.scale(scale);
                let attn = softmax_rows(&scores);
                let ctx_h = e.gemm(&attn, &vh)?;
                head_unslice(&mut ctx, &ctx_h, b, h, self.seq, self.dim, head_dim);
            }
        }
        Ok(e.gemm_prepared(&ctx, &self.wo_t)?)
    }

    /// Head-shards the attention into two staged sharded steps. Stage
    /// one gives each shard a contiguous head range: because head `h`
    /// occupies activation columns `h·head_dim ..= (h+1)·head_dim`, a
    /// head range is exactly a column shard of the prepared
    /// `Wq`/`Wk`/`Wv`, and each shard runs its own score/softmax/context
    /// loop on bit-identical projections; concatenating the per-shard
    /// context blocks in head order rebuilds the full context
    /// bit-exactly. Stage two column-shards the output projection `Wo`
    /// (its reduction dimension is the full `dim`, so it cannot join
    /// stage one without splitting `k` — which the contract forbids).
    fn shard(&self, shards: usize) -> Result<Option<Vec<crate::shard::ShardedStep>>> {
        use crate::shard::{
            column_ranges, head_ranges, slice_prepared, GemmShardPart, HeadShardPart, ShardedStep,
        };
        if !self.engine.tile_invariant() {
            return Ok(None);
        }
        let head_dim = self.dim / self.heads;
        let mut head_parts: Vec<Box<dyn PlanStep>> = Vec::with_capacity(shards);
        for (h0, count) in head_ranges(self.heads, shards) {
            let (c0, width) = (h0 * head_dim, count * head_dim);
            head_parts.push(Box::new(HeadShardPart::new(
                self.engine.clone(),
                self.seq,
                self.dim,
                head_dim,
                count,
                slice_prepared(&self.engine, &self.wq_t, c0, width)?,
                slice_prepared(&self.engine, &self.wk_t, c0, width)?,
                slice_prepared(&self.engine, &self.wv_t, c0, width)?,
            )));
        }
        let mut proj_parts: Vec<Box<dyn PlanStep>> = Vec::with_capacity(shards);
        for (c0, width) in column_ranges(self.wo_t.n(), shards) {
            proj_parts.push(Box::new(GemmShardPart::new(
                "attention-proj-shard",
                self.engine.clone(),
                slice_prepared(&self.engine, &self.wo_t, c0, width)?,
                None,
                false,
            )));
        }
        Ok(Some(vec![
            ShardedStep::concat("attention-heads", head_parts)?,
            ShardedStep::concat("attention-proj", proj_parts)?,
        ]))
    }
}

// ─────────────────────────── pure data steps ───────────────────────────

/// Identity step (inference-mode `Dropout`).
pub(crate) struct IdentityStep {
    pub(crate) name: &'static str,
}

impl PlanStep for IdentityStep {
    fn name(&self) -> &'static str {
        self.name
    }

    fn run(&self, x: &Tensor, _scratch: &mut ActivationScratch) -> Result<Tensor> {
        Ok(x.clone())
    }

    fn is_identity(&self) -> bool {
        true
    }
}

/// `Relu` frozen: same element-wise max as the eager layer, no mask
/// capture.
pub(crate) struct ReluStep;

impl PlanStep for ReluStep {
    fn name(&self) -> &'static str {
        "relu"
    }

    fn run(&self, x: &Tensor, _scratch: &mut ActivationScratch) -> Result<Tensor> {
        Ok(x.map(|v| v.max(0.0)))
    }

    /// Exactly the expression the fused [`Epilogue`] ReLU applies —
    /// the peephole may fold this step into its predecessor.
    fn is_relu(&self) -> bool {
        true
    }
}

/// `MaxPool2d` frozen: pooled values only, no argmax capture.
pub(crate) struct MaxPool2dStep {
    pub(crate) kernel: usize,
    pub(crate) stride: usize,
}

impl PlanStep for MaxPool2dStep {
    fn name(&self) -> &'static str {
        "maxpool2d"
    }

    fn run(&self, x: &Tensor, _scratch: &mut ActivationScratch) -> Result<Tensor> {
        Ok(maxpool2d_forward(x, self.kernel, self.stride)?.0)
    }
}

/// `Flatten` frozen: `[b, ...] -> [b, prod(...)]`, no shape capture.
pub(crate) struct FlattenStep;

impl PlanStep for FlattenStep {
    fn name(&self) -> &'static str {
        "flatten"
    }

    fn run(&self, x: &Tensor, _scratch: &mut ActivationScratch) -> Result<Tensor> {
        let b = x.shape()[0];
        let rest: usize = x.shape()[1..].iter().product();
        Ok(x.reshape(&[b, rest])?)
    }
}

/// `GlobalAvgPool2d` frozen.
pub(crate) struct GlobalAvgPool2dStep;

impl PlanStep for GlobalAvgPool2dStep {
    fn name(&self) -> &'static str {
        "global-avgpool2d"
    }

    fn run(&self, x: &Tensor, _scratch: &mut ActivationScratch) -> Result<Tensor> {
        Ok(global_avgpool2d(x)?)
    }
}

/// `SeqMeanPool` frozen: same block-mean loop as the eager layer.
pub(crate) struct SeqMeanPoolStep {
    pub(crate) seq: usize,
}

impl PlanStep for SeqMeanPoolStep {
    fn name(&self) -> &'static str {
        "seq-mean-pool"
    }

    fn run(&self, x: &Tensor, _scratch: &mut ActivationScratch) -> Result<Tensor> {
        crate::attention::seq_mean_pool(x, self.seq)
    }
}

/// `LayerNorm` frozen: same per-row normalization as the eager layer,
/// without the backward cache.
pub(crate) struct LayerNormStep {
    pub(crate) gamma: Vec<f32>,
    pub(crate) beta: Vec<f32>,
    pub(crate) eps: f32,
}

impl PlanStep for LayerNormStep {
    fn name(&self) -> &'static str {
        "layernorm"
    }

    fn run(&self, x: &Tensor, _scratch: &mut ActivationScratch) -> Result<Tensor> {
        crate::norm::layernorm_rows(x, &self.gamma, &self.beta, self.eps, None)
    }
}

/// Inference-mode `BatchNorm2d` frozen: per-channel normalization with
/// the **running** statistics captured at compile time — the same
/// arithmetic as the eager layer's inference branch.
pub(crate) struct BatchNorm2dStep {
    pub(crate) gamma: Vec<f32>,
    pub(crate) beta: Vec<f32>,
    pub(crate) running_mean: Vec<f32>,
    pub(crate) running_var: Vec<f32>,
    pub(crate) eps: f32,
}

impl PlanStep for BatchNorm2dStep {
    fn name(&self) -> &'static str {
        "batchnorm2d"
    }

    fn run(&self, x: &Tensor, _scratch: &mut ActivationScratch) -> Result<Tensor> {
        crate::norm::batchnorm2d_normalize(
            x,
            &self.gamma,
            &self.beta,
            &self.running_mean,
            &self.running_var,
            self.eps,
            None,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::{Dense, Dropout, Relu};
    use crate::Sequential;
    use mirage_tensor::engines::ExactEngine;
    use rand::SeedableRng;

    fn engines() -> Engines {
        Engines::uniform(ExactEngine)
    }

    fn net(seed: u64) -> Sequential {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut net = Sequential::new();
        net.push(Dense::new(6, 10, &mut rng));
        net.push(Relu::new());
        net.push(Dense::new(10, 3, &mut rng));
        net
    }

    #[test]
    fn compiled_network_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<CompiledNetwork>();
        assert_send_sync::<EagerStep>();
    }

    #[test]
    fn compiled_matches_eager_bitwise() {
        let mut net = net(1);
        let e = engines();
        let compiled = net.compile(&e).unwrap();
        // The dense→relu pair fused into one step by the peephole.
        assert_eq!(compiled.len(), 2);
        assert_eq!(compiled.step_names(), vec!["dense+relu", "dense"]);
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        for rows in [1, 5] {
            let x = Tensor::randn(&[rows, 6], 1.0, &mut rng);
            assert_eq!(
                compiled.run(&x).unwrap().data(),
                net.forward(&x, &e).unwrap().data()
            );
        }
    }

    #[test]
    fn fused_plan_matches_unfused_plan_bitwise() {
        let net = net(9);
        let e = engines();
        let fused = net.compile(&e).unwrap();
        let unfused = net.compile_unfused(&e).unwrap();
        assert_eq!(fused.step_names(), vec!["dense+relu", "dense"]);
        assert_eq!(unfused.step_names(), vec!["dense", "relu", "dense"]);
        let mut rng = rand::rngs::StdRng::seed_from_u64(10);
        for rows in [1, 4, 32] {
            let x = Tensor::randn(&[rows, 6], 1.0, &mut rng);
            let yf = fused.run(&x).unwrap();
            let yu = unfused.run(&x).unwrap();
            let fbits: Vec<u32> = yf.data().iter().map(|v| v.to_bits()).collect();
            let ubits: Vec<u32> = yu.data().iter().map(|v| v.to_bits()).collect();
            assert_eq!(fbits, ubits, "rows={rows}");
        }
    }

    #[test]
    fn relu_without_fusable_predecessor_stays_a_step() {
        use crate::layers::Relu;
        let mut net = Sequential::new();
        net.push(Relu::new()); // first step: nothing to fuse into
        net.push(Relu::new()); // relu after relu: ReluStep has no fused form
        let compiled = net.compile(&engines()).unwrap();
        assert_eq!(compiled.step_names(), vec!["relu", "relu"]);
        let x = Tensor::from_vec(vec![-2.0, 3.0], &[1, 2]).unwrap();
        assert_eq!(compiled.run(&x).unwrap().data(), &[0.0, 3.0]);
    }

    #[test]
    fn run_with_recycles_activation_buffers() {
        let net = net(3);
        let e = engines();
        let compiled = net.compile(&e).unwrap();
        let x = Tensor::ones(&[4, 6]);
        let mut scratch = ActivationScratch::new();
        compiled.run_with(&x, &mut scratch).unwrap();
        // The dead intermediates were recycled, not dropped.
        assert!(scratch.pooled() > 0);
    }

    #[test]
    fn run_batch_matches_per_item_runs() {
        let net = net(4);
        let e = engines();
        let compiled = net.compile(&e).unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        let inputs: Vec<Tensor> = (0..4)
            .map(|_| Tensor::randn(&[3, 6], 1.0, &mut rng))
            .collect();
        let batch = compiled.run_batch(&inputs).unwrap();
        for (x, y) in inputs.iter().zip(&batch) {
            assert_eq!(y.data(), compiled.run(x).unwrap().data());
        }
        assert!(compiled.run_batch(&[]).unwrap().is_empty());
    }

    #[test]
    fn empty_network_compiles_to_identity() {
        let net = Sequential::new();
        let compiled = net.compile(&engines()).unwrap();
        assert!(compiled.is_empty());
        let x = Tensor::ones(&[2, 2]);
        assert_eq!(compiled.run(&x).unwrap(), x);
    }

    #[test]
    fn training_dropout_fails_compilation_with_a_clear_message() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(6);
        let mut net = Sequential::new();
        net.push(Dense::new(4, 4, &mut rng));
        net.push(Dropout::new(0.5, 11));
        let err = net.compile(&engines()).unwrap_err();
        match &err {
            NnError::NotCompilable { layer, reason } => {
                assert_eq!(layer, "dropout");
                assert!(reason.contains("set_training(false)"), "{reason}");
            }
            other => panic!("expected NotCompilable, got {other:?}"),
        }
    }

    #[test]
    fn inference_dropout_compiles_to_identity() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        let mut net = Sequential::new();
        net.push(Dense::new(4, 4, &mut rng));
        let mut dropout = Dropout::new(0.9, 11);
        dropout.set_training(false);
        net.push(dropout);
        let e = engines();
        let compiled = net.compile(&e).unwrap();
        // The identity dropout step is elided from the plan entirely.
        assert_eq!(compiled.step_names(), vec!["dense"]);
        let x = Tensor::ones(&[2, 4]);
        let mut eager = net;
        assert_eq!(
            compiled.run(&x).unwrap().data(),
            eager.forward(&x, &e).unwrap().data()
        );
    }

    #[test]
    fn default_compile_rejects_unknown_layers() {
        struct Custom;
        impl Layer for Custom {
            fn name(&self) -> &'static str {
                "custom"
            }
            fn forward(&mut self, x: &Tensor, _e: &Engines) -> Result<Tensor> {
                Ok(x.clone())
            }
            fn backward(&mut self, d: &Tensor, _e: &Engines) -> Result<Tensor> {
                Ok(d.clone())
            }
        }
        let mut net = Sequential::new();
        net.push(Custom);
        let err = net.compile(&engines()).unwrap_err();
        assert!(
            matches!(&err, NnError::NotCompilable { layer, .. } if layer == "custom"),
            "{err:?}"
        );
    }

    #[test]
    fn eager_step_wraps_the_eager_path() {
        let e = engines();
        let mut rng = rand::rngs::StdRng::seed_from_u64(8);
        let dense = Dense::new(5, 2, &mut rng);
        let x = Tensor::ones(&[3, 5]);
        let mut reference = Dense::from_weights(dense.weight().clone(), Tensor::zeros(&[2]));
        let step = EagerStep::boxed(
            Dense::from_weights(dense.weight().clone(), Tensor::zeros(&[2])),
            &e,
        );
        assert_eq!(step.name(), "dense");
        assert_eq!(
            step.run(&x, &mut ActivationScratch::new()).unwrap().data(),
            reference.forward(&x, &e).unwrap().data()
        );
    }
}
