//! A minimal, dependency-free stand-in for the `rand` crate.
//!
//! The evaluation environment has no network access to crates.io, so the
//! workspace vendors the small API subset it actually uses:
//!
//! - [`rngs::StdRng`] — a deterministic xoshiro256++ generator.
//! - [`SeedableRng::seed_from_u64`] — the only seeding path the repo uses.
//! - [`RngExt::random`] — uniform sampling of primitive types.
//!
//! The generator is deterministic and reproducible across platforms; it is
//! **not** cryptographically secure, which is fine for simulation noise and
//! weight initialisation. Replace this crate with the real `rand` from
//! crates.io by editing `[workspace.dependencies]` in the root manifest.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// A source of random 64-bit words.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Deterministic construction of a generator from a seed.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Extension methods for sampling typed values from any [`RngCore`].
///
/// This mirrors `rand::Rng` from the real crate (renamed `random` per the
/// rand 0.9 API the repo was written against).
pub trait RngExt: RngCore {
    /// Samples a value of type `T` from the standard distribution:
    /// uniform over the full range for integers, uniform in `[0, 1)` for
    /// floats, and fair for `bool`.
    fn random<T: StandardSample>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }
}

impl<R: RngCore> RngExt for R {}

/// Types that can be sampled from the standard distribution.
pub trait StandardSample {
    /// Draws one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl StandardSample for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl StandardSample for u128 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (u128::from(rng.next_u64()) << 64) | u128::from(rng.next_u64())
    }
}

impl StandardSample for i128 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        u128::sample(rng) as i128
    }
}

impl StandardSample for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl StandardSample for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 24 random mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++,
    /// seeded through SplitMix64 exactly like `rand`'s small-rng path.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let out = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            out
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{RngExt, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..64 {
            assert_eq!(a.next_words(), b.next_words());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.random::<u64>(), c.random::<u64>());
    }

    impl StdRng {
        fn next_words(&mut self) -> (u64, f64, f32, bool) {
            (self.random(), self.random(), self.random(), self.random())
        }
    }

    #[test]
    fn floats_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x: f64 = rng.random();
            assert!((0.0..1.0).contains(&x));
            let y: f32 = rng.random();
            assert!((0.0..1.0).contains(&y));
        }
    }
}
