//! GEMM executed on the device-level photonic simulator.

use mirage_arch::MirageConfig;
use mirage_bfp::{pow2, BfpConfig, PackedBfpMatrix};
use mirage_photonics::RnsMmvmu;
use mirage_tensor::engines::{BfpEngine, GemmEngine, PreparedRhs};
use mirage_tensor::{Result, Tensor, TensorError};
use std::sync::Arc;

/// The streamed operand, packed: every column of `B` quantized once and
/// widened once into a single contiguous `i64` buffer (the element type
/// the device interface takes), in the same padded `rows × padded_k`
/// geometry as [`PackedBfpMatrix`]. Group slices are carved out by
/// offset — no per-group heap objects on the streaming path.
#[derive(Debug)]
struct PackedStreamedCols {
    /// Streamed rows (= columns of `B`).
    rows: usize,
    k: usize,
    groups_per_row: usize,
    g: usize,
    /// `rows * groups_per_row * g` widened mantissae, tail zero-padded.
    mantissas: Vec<i64>,
    /// `rows * groups_per_row` shared scale exponents.
    scale_exps: Vec<i32>,
}

impl PackedStreamedCols {
    fn from_packed(packed: &PackedBfpMatrix) -> Self {
        PackedStreamedCols {
            rows: packed.rows(),
            k: packed.k(),
            groups_per_row: packed.groups_per_row(),
            g: packed.config().group_size(),
            mantissas: packed.mantissas().iter().map(|&m| i64::from(m)).collect(),
            scale_exps: packed.scale_exps().to_vec(),
        }
    }

    /// The **unpadded** mantissa lanes of group `gi` of streamed row
    /// `row` — the exact slice the legacy block path handed the device,
    /// so ragged tail groups drive the simulated MMVMUs identically.
    fn group(&self, row: usize, gi: usize) -> &[i64] {
        let base = (row * self.groups_per_row + gi) * self.g;
        let len = (self.k - gi * self.g).min(self.g);
        &self.mantissas[base..base + len]
    }

    fn scale_exp(&self, row: usize, gi: usize) -> i32 {
        self.scale_exps[row * self.groups_per_row + gi]
    }
}

/// Prepared B-side state: the packed streamed operand plus a column
/// range, so the tiled parallel driver can hand workers views of one
/// shared buffer (see `mirage_tensor::engines::GemmEngine::prepare_tile`).
#[derive(Debug)]
struct PreparedPhotonicCols {
    bfp: BfpConfig,
    packed: Arc<PackedStreamedCols>,
    col_start: usize,
    col_count: usize,
}

/// Quantizes, packs and widens the columns of `B` for streaming.
fn stream_cols(b: &Tensor, bfp: BfpConfig) -> Result<PackedStreamedCols> {
    Ok(PackedStreamedCols::from_packed(&BfpEngine::pack_cols_wide(
        b, bfp,
    )?))
}

/// A [`GemmEngine`] that runs every tile through the photonic
/// RNS-MMVMU simulator — phase accumulation in cascaded MMUs, I/Q
/// phase detection, ADC quantization and reverse conversion — i.e. the
/// complete Fig. 2 dataflow at device level.
///
/// Noiseless by construction (design-point laser power); the noise
/// study lives in `mirage_photonics::RnsMmvmu::mvm_signed_noisy` and
/// the `fige_variation` bench. Bit-identical to
/// [`BfpEngine`] — an equivalence the test suite enforces.
///
/// Tile-invariant: each photonic output row depends only on its own
/// stationary weight row and the streamed activation column, so wrapping
/// this engine in `mirage_tensor::parallel::ParallelGemm` fans the
/// simulated MMVMU tiles across host threads bit-identically — the
/// multi-threaded analogue of the eight hardware MMVMUs computing in
/// parallel.
#[derive(Debug, Clone)]
pub struct PhotonicGemmEngine {
    bfp: BfpConfig,
    unit: RnsMmvmu,
    rows: usize,
}

impl PhotonicGemmEngine {
    /// Builds the engine for an accelerator configuration.
    pub fn new(cfg: &MirageConfig) -> Self {
        PhotonicGemmEngine {
            bfp: BfpConfig::new(cfg.bm, cfg.g).expect("validated by MirageConfig"),
            unit: RnsMmvmu::new(&cfg.moduli, cfg.rows, cfg.g, &cfg.photonics),
            rows: cfg.rows,
        }
    }

    /// The BFP operating point in use.
    pub fn bfp_config(&self) -> BfpConfig {
        self.bfp
    }

    /// The shared GEMM kernel: programs stationary tiles from the
    /// packed rows of `A` and streams an already-packed column range of
    /// `B` through the simulated MMVMUs. The per-tile weight staging
    /// buffer is reused across every tile and group — the only
    /// steady-state cost is the `i32 → i64` widening the device
    /// interface requires.
    fn gemm_with_packed(
        &self,
        a: &Tensor,
        cols: &PackedStreamedCols,
        col_start: usize,
        n: usize,
    ) -> Result<Tensor> {
        let mut out = Vec::new();
        let m = self.gemm_with_packed_into(a, cols, col_start, n, &mut out)?;
        Tensor::from_vec(out, &[m, n])
    }

    /// [`PhotonicGemmEngine::gemm_with_packed`] writing into a caller
    /// buffer — the allocation-free entry point behind
    /// [`GemmEngine::gemm_prepared_into`]. Returns `m`.
    fn gemm_with_packed_into(
        &self,
        a: &Tensor,
        cols: &PackedStreamedCols,
        col_start: usize,
        n: usize,
        out: &mut Vec<f32>,
    ) -> Result<usize> {
        let (m, k) = (a.shape()[0], a.shape()[1]);
        if cols.k != k {
            return Err(TensorError::DimMismatch {
                left: k,
                right: cols.k,
            });
        }
        debug_assert!(col_start + n <= cols.rows, "column range out of bounds");
        let a_packed = BfpEngine::pack_rows_wide(a, self.bfp);
        let groups_per_row = a_packed.groups_per_row();
        let g = self.bfp.group_size();

        out.clear();
        out.resize(m * n, 0.0);
        // Reused weight-staging scratch: one `Vec<i64>` per MDPU row,
        // refilled in place (clear + extend within capacity) per tile.
        let mut weight_tile: Vec<Vec<i64>> = vec![Vec::with_capacity(g); self.rows];
        // Stationary tiles: `rows` rows of A x one k-group; stream the
        // columns of B through each tile (DF1 / weight-stationary).
        for row_tile in (0..m).step_by(self.rows) {
            let tile_rows = (row_tile + self.rows).min(m) - row_tile;
            for gi in 0..groups_per_row {
                let len = a_packed.group_len(gi);
                // Program the phase shifters with this tile's mantissae.
                for (r, lanes) in weight_tile.iter_mut().take(tile_rows).enumerate() {
                    lanes.clear();
                    lanes.extend(
                        a_packed.group_mantissas(row_tile + r, gi)[..len]
                            .iter()
                            .map(|&v| i64::from(v)),
                    );
                }
                for j in 0..n {
                    let col = col_start + j;
                    // One photonic modular MVM (Fig. 2 step 5-7).
                    let outputs = self
                        .unit
                        .mvm_signed_ideal(cols.group(col, gi), &weight_tile[..tile_rows])
                        .map_err(|e| TensorError::InvalidGeometry(e.to_string()))?;
                    // Exponent recombination + FP32 accumulation (8-9).
                    for (r, &integer) in outputs.iter().enumerate() {
                        let scale_exp =
                            a_packed.group_scale_exp(row_tile + r, gi) + cols.scale_exp(col, gi);
                        out[(row_tile + r) * n + j] += (integer as f64 * pow2(scale_exp)) as f32;
                    }
                }
            }
        }
        Ok(m)
    }
}

impl GemmEngine for PhotonicGemmEngine {
    fn name(&self) -> &'static str {
        "mirage-photonic"
    }

    /// `true`: each simulated output row depends only on its own
    /// stationary weight row and the streamed activation column (the
    /// `tiles_larger_than_array_height` test pins this against the BFP
    /// reference for arbitrary row-tile membership).
    fn tile_invariant(&self) -> bool {
        true
    }

    fn gemm(&self, a: &Tensor, b: &Tensor) -> Result<Tensor> {
        let (_m, _k, n) = dims(a, b)?;
        let cols = stream_cols(b, self.bfp)?;
        self.gemm_with_packed(a, &cols, 0, n)
    }

    /// Quantizes, packs and widens the streamed operand once; repeated
    /// calls only quantize the stationary side.
    fn prepare(&self, b: &Tensor) -> Result<PreparedRhs> {
        let prepared = PreparedRhs::from_raw(self.name(), b)?;
        let n = prepared.n();
        let cols = stream_cols(b, self.bfp)?;
        Ok(prepared.with_state(Arc::new(PreparedPhotonicCols {
            bfp: self.bfp,
            packed: Arc::new(cols),
            col_start: 0,
            col_count: n,
        })))
    }

    /// Slices a column tile out of an existing preparation: the tile
    /// shares the packed streamed buffer through the `Arc`, so the
    /// tiled parallel driver never re-quantizes B per column tile.
    fn prepare_tile(
        &self,
        whole: &PreparedRhs,
        c0: usize,
        width: usize,
    ) -> Result<Option<PreparedRhs>> {
        let Some(state) = whole.state_for::<PreparedPhotonicCols>(self.name()) else {
            return Ok(None);
        };
        if state.bfp != self.bfp || c0 + width > state.col_count {
            return Ok(None);
        }
        let raw = whole.slice_raw_cols(c0, width)?;
        Ok(Some(PreparedRhs::from_raw(self.name(), &raw)?.with_state(
            Arc::new(PreparedPhotonicCols {
                bfp: state.bfp,
                packed: Arc::clone(&state.packed),
                col_start: state.col_start + c0,
                col_count: width,
            }),
        )))
    }

    /// Reuses the pre-packed streamed columns; falls back to
    /// [`PhotonicGemmEngine::gemm`] on preparations from other engines
    /// or other BFP operating points.
    fn gemm_prepared(&self, a: &Tensor, b: &PreparedRhs) -> Result<Tensor> {
        let (_m, _k, n) = dims(a, b.raw())?;
        match b.state_for::<PreparedPhotonicCols>(self.name()) {
            Some(state) if state.bfp == self.bfp && state.col_count == n => {
                self.gemm_with_packed(a, &state.packed, state.col_start, n)
            }
            _ => self.gemm(a, b.raw()),
        }
    }

    /// The simulated device kernel writes straight into the caller's
    /// buffer — bit-identical to [`PhotonicGemmEngine::gemm_prepared`].
    fn gemm_prepared_into(
        &self,
        a: &Tensor,
        b: &PreparedRhs,
        out: &mut Vec<f32>,
    ) -> Result<(usize, usize)> {
        let (_m, _k, n) = dims(a, b.raw())?;
        match b.state_for::<PreparedPhotonicCols>(self.name()) {
            Some(state) if state.bfp == self.bfp && state.col_count == n => {
                let m = self.gemm_with_packed_into(a, &state.packed, state.col_start, n, out)?;
                Ok((m, n))
            }
            _ => {
                let y = self.gemm(a, b.raw())?;
                let m = y.shape()[0];
                out.clear();
                out.extend_from_slice(y.data());
                Ok((m, n))
            }
        }
    }
}

fn dims(a: &Tensor, b: &Tensor) -> Result<(usize, usize, usize)> {
    for t in [a, b] {
        if t.rank() != 2 {
            return Err(TensorError::RankMismatch {
                expected: 2,
                actual: t.rank(),
            });
        }
    }
    if a.shape()[1] != b.shape()[0] {
        return Err(TensorError::DimMismatch {
            left: a.shape()[1],
            right: b.shape()[0],
        });
    }
    Ok((a.shape()[0], a.shape()[1], b.shape()[1]))
}

#[cfg(test)]
mod tests {
    use super::*;
    use mirage_tensor::engines::BfpEngine;
    use rand::SeedableRng;

    #[test]
    fn matches_bfp_engine_bit_exactly() {
        let cfg = MirageConfig::default();
        let engine = PhotonicGemmEngine::new(&cfg);
        let fast = BfpEngine::new(engine.bfp_config());
        let mut rng = rand::rngs::StdRng::seed_from_u64(77);
        for (m, k, n) in [(1, 16, 1), (5, 33, 4), (40, 20, 3)] {
            let a = Tensor::randn(&[m, k], 1.0, &mut rng);
            let b = Tensor::randn(&[k, n], 1.0, &mut rng);
            let c_ph = engine.gemm(&a, &b).unwrap();
            let c_bf = fast.gemm(&a, &b).unwrap();
            assert_eq!(c_ph.data(), c_bf.data(), "{m}x{k}x{n}");
        }
    }

    #[test]
    fn zero_dimension_gemms_are_well_formed() {
        let engine = PhotonicGemmEngine::new(&MirageConfig::default());
        for (m, k, n) in [(0, 16, 2), (3, 0, 2), (3, 16, 0), (0, 0, 0)] {
            let a = Tensor::zeros(&[m, k]);
            let b = Tensor::zeros(&[k, n]);
            let c = engine.gemm(&a, &b).unwrap();
            assert_eq!(c.shape(), &[m, n], "{m}x{k}x{n}");
            assert!(c.data().iter().all(|&v| v == 0.0));
            let p = engine.prepare(&b).unwrap();
            assert_eq!(engine.gemm_prepared(&a, &p).unwrap().data(), c.data());
        }
    }

    #[test]
    fn rejects_bad_shapes() {
        let engine = PhotonicGemmEngine::new(&MirageConfig::default());
        assert!(engine
            .gemm(&Tensor::zeros(&[2, 3]), &Tensor::zeros(&[4, 5]))
            .is_err());
        assert!(engine
            .gemm(&Tensor::zeros(&[2]), &Tensor::zeros(&[2, 2]))
            .is_err());
    }

    #[test]
    fn parallel_driver_is_bit_identical_on_the_device_path() {
        use mirage_tensor::parallel::TileConfig;
        let engine = PhotonicGemmEngine::new(&MirageConfig::default());
        let mut rng = rand::rngs::StdRng::seed_from_u64(79);
        let a = Tensor::randn(&[48, 32], 1.0, &mut rng);
        let b = Tensor::randn(&[32, 24], 1.0, &mut rng);
        let serial = engine.gemm(&a, &b).unwrap();
        let parallel = engine
            .clone()
            .parallel_with(TileConfig {
                tile_m: 16,
                tile_n: 8,
                tile_k: 0,
                threads: 4,
            })
            .gemm(&a, &b)
            .unwrap();
        assert_eq!(parallel.data(), serial.data());
    }

    #[test]
    fn prepared_device_path_is_bit_identical() {
        let engine = PhotonicGemmEngine::new(&MirageConfig::default());
        let mut rng = rand::rngs::StdRng::seed_from_u64(80);
        let b = Tensor::randn(&[33, 6], 1.0, &mut rng);
        let prepared = engine.prepare(&b).unwrap();
        for _ in 0..2 {
            let a = Tensor::randn(&[40, 33], 1.0, &mut rng);
            assert_eq!(
                engine.gemm_prepared(&a, &prepared).unwrap().data(),
                engine.gemm(&a, &b).unwrap().data()
            );
        }
        // A foreign preparation falls back to the raw matrix.
        let foreign = BfpEngine::new(BfpConfig::new(8, 16).unwrap())
            .prepare(&b)
            .unwrap();
        let a = Tensor::randn(&[5, 33], 1.0, &mut rng);
        assert_eq!(
            engine.gemm_prepared(&a, &foreign).unwrap().data(),
            engine.gemm(&a, &b).unwrap().data()
        );
    }

    #[test]
    fn tiles_larger_than_array_height() {
        // m = 70 forces three stationary row tiles on the 32-row array.
        let cfg = MirageConfig::default();
        let engine = PhotonicGemmEngine::new(&cfg);
        let mut rng = rand::rngs::StdRng::seed_from_u64(78);
        let a = Tensor::randn(&[70, 16], 1.0, &mut rng);
        let b = Tensor::randn(&[16, 2], 1.0, &mut rng);
        let c = engine.gemm(&a, &b).unwrap();
        let want = BfpEngine::new(engine.bfp_config()).gemm(&a, &b).unwrap();
        assert_eq!(c.data(), want.data());
    }
}
