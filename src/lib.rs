//! # Mirage
//!
//! A full reproduction of **"Mirage: An RNS-Based Photonic Accelerator
//! for DNN Training"** (Demirkiran, Yang, Bunandar, Joshi — ISCA 2024)
//! as a Rust workspace. This facade crate re-exports every subsystem:
//!
//! | Module | Crate | Contents |
//! |--------|-------|----------|
//! | [`rns`] | `mirage-rns` | Residue Number System arithmetic, special moduli sets, RRNS |
//! | [`bfp`] | `mirage-bfp` | Block Floating Point groups and quantization |
//! | [`tensor`] | `mirage-tensor` | Tensors, convolutions, quantized GEMM engines |
//! | [`nn`] | `mirage-nn` | DNN training with engine-swappable GEMMs |
//! | [`photonics`] | `mirage-photonics` | MMU/MDPU/MMVMU device simulation, noise, laser power |
//! | [`arch`] | `mirage-arch` | Latency/power/area models, dataflows, systolic baselines |
//! | [`models`] | `mirage-models` | The 7-DNN workload zoo, synthetic datasets, small nets |
//! | [`core`] | `mirage-core` | The [`Mirage`] accelerator object |
//!
//! ## Quickstart
//!
//! ```
//! use mirage::Mirage;
//! use mirage::tensor::{Tensor, GemmEngine, engines::ExactEngine};
//!
//! let accelerator = Mirage::paper_default();
//! let a = Tensor::from_vec(vec![0.5, -0.25, 1.0, 0.75], &[2, 2])?;
//! let b = Tensor::from_vec(vec![1.0, 0.0, 0.5, -0.5], &[2, 2])?;
//! let c = accelerator.gemm_engine().gemm(&a, &b)?;
//! assert!(c.allclose(&ExactEngine.gemm(&a, &b)?, 0.1));
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```
//!
//! See the `examples/` directory for end-to-end scenarios and
//! `crates/bench` for the per-table/figure reproduction harness.

#![forbid(unsafe_code)]
#![deny(missing_docs)]
#![deny(unused_must_use)]

pub use mirage_arch as arch;
pub use mirage_bfp as bfp;
pub use mirage_core as core;
pub use mirage_models as models;
pub use mirage_nn as nn;
pub use mirage_photonics as photonics;
pub use mirage_rns as rns;
pub use mirage_tensor as tensor;

pub use mirage_core::serve::{
    BatchMode, ModelServer, PendingResponse, RequestStats, Response, ServeError, ServerConfig,
    ServerStats,
};
pub use mirage_core::{InferenceSession, Mirage, ModelSession, PhotonicGemmEngine};
pub use mirage_nn::{CompiledNetwork, PipelineTrace, ShardPlan, ShardSpec};
pub use mirage_tensor::engines::ProtectedRnsBfpEngine;
pub use mirage_tensor::faults::{FaultConfig, FaultCounts, FaultInjector, FaultyEngine};
