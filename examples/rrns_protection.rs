//! Redundant-RNS error correction on the photonic read-out
//! (paper §VI-E): compare unprotected and RRNS-protected MVMs as the
//! laser power is starved.
//!
//! ```sh
//! cargo run --release --example rrns_protection
//! ```

use mirage::photonics::{PhotonicConfig, ProtectedOutput, ProtectedRnsMmvmu, RnsMmvmu};
use mirage::rns::ModuliSet;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let cfg = PhotonicConfig::default();
    let base = [31u64, 32, 33];
    let redundant = [37u64, 41];
    let plain = RnsMmvmu::new(&ModuliSet::special_set(5)?, 8, 16, &cfg);
    let protected = ProtectedRnsMmvmu::new(&base, &redundant, 8, 16, &cfg)?;

    let x: Vec<i64> = (0..16).map(|i| ((i * 5) % 31) - 15).collect();
    let w: Vec<Vec<i64>> = (0..8)
        .map(|r| {
            (0..16)
                .map(|j| ((r * 7 + j * 3) % 31) as i64 - 15)
                .collect()
        })
        .collect();
    let ideal = plain.mvm_signed_ideal(&x, &w)?;
    let mut rng = rand::rngs::StdRng::seed_from_u64(4242);

    println!("RRNS protection: base {{31,32,33}} + redundant {{37,41}}");
    println!(
        "hardware overhead: {:.2}x channels; throughput unchanged\n",
        protected.overhead_ratio()
    );
    println!(
        "{:<14} {:>14} {:>14} {:>12}",
        "power (x spec)", "plain err (%)", "rrns err (%)", "corrected/N"
    );
    for scale in [1.0, 0.7, 0.5, 0.35, 0.25] {
        let trials = 150;
        let mut plain_err = 0usize;
        let mut rrns_err = 0usize;
        let mut corrected = 0usize;
        for _ in 0..trials {
            let noisy = plain.mvm_signed_noisy(&x, &w, scale, &mut rng)?;
            plain_err += noisy.iter().zip(&ideal).filter(|(a, b)| a != b).count();
            let out = protected.mvm_protected(&x, &w, scale, &mut rng)?;
            for (o, &want) in out.iter().zip(&ideal) {
                match o {
                    ProtectedOutput::Corrected { value, .. } => {
                        corrected += 1;
                        if *value != want {
                            rrns_err += 1;
                        }
                    }
                    ProtectedOutput::Clean(v) if *v == want => {}
                    _ => rrns_err += 1,
                }
            }
        }
        let n = (trials * ideal.len()) as f64;
        println!(
            "{:<14} {:>14.2} {:>14.2} {:>9}/{}",
            scale,
            plain_err as f64 / n * 100.0,
            rrns_err as f64 / n * 100.0,
            corrected,
            n as usize
        );
    }
    println!("\nAt moderate starvation the RRNS decoder locates and repairs the");
    println!("single corrupted channel; only multi-channel corruption survives.");
    Ok(())
}
