//! The fault-injection contract: corruptions are accounted, corrected,
//! or surfaced as typed errors — **never silent**.
//!
//! This suite drives the whole serving grid — exact / BFP / RNS-BFP
//! arithmetic wrapped in [`FaultyEngine`], plus the RRNS-protected
//! engine — through [`ModelServer`] in both batch modes and on both a
//! dense and a tensor-sharded placement, under a deterministic seeded
//! [`FaultInjector`]:
//!
//! - **Rate zero** is free: every response is bit-identical to the lone
//!   eager forward and the injector consumes *zero* PRNG draws.
//! - **Rate > 0, unprotected**: any response that deviates from the
//!   clean reference carries `faults.injected > 0` in its
//!   [`RequestStats`] — corruption may pass through, but it is always
//!   visible in the accounting.
//! - **Rate > 0, protected**: every `Ok` response is bit-identical to
//!   the clean reference (the corruption was corrected), and every
//!   failure is the typed [`ServeError::Uncorrectable`] — no third
//!   outcome exists.

use mirage::models::small::small_mlp;
use mirage::nn::{Engines, Sequential};
use mirage::tensor::engines::ExactEngine;
use mirage::tensor::Tensor;
use mirage::{
    BatchMode, FaultConfig, FaultInjector, FaultyEngine, Mirage, ModelServer, RequestStats,
    ServeError, ServerConfig, ShardPlan, ShardSpec,
};
use rand::SeedableRng;
use std::sync::Arc;
use std::time::Duration;

/// The redundant moduli used throughout: the two smallest primes above
/// the paper's special set `{31, 32, 33}`.
const REDUNDANT: [u64; 2] = [37, 41];

/// The unprotected arithmetic paths of the grid.
const UNPROTECTED: [&str; 3] = ["fp32", "bfp", "rns-bfp"];

/// An engine stack whose GEMM outputs flow through `injector`.
fn faulty_stack(mirage: &Mirage, name: &str, injector: &Arc<FaultInjector>) -> Engines {
    match name {
        "fp32" => Engines::uniform(FaultyEngine::new(ExactEngine, Arc::clone(injector))),
        "bfp" => Engines::uniform(FaultyEngine::new(
            mirage.gemm_engine(),
            Arc::clone(injector),
        )),
        "rns-bfp" => Engines::uniform(FaultyEngine::new(
            mirage.rns_gemm_engine().expect("paper moduli"),
            Arc::clone(injector),
        )),
        "rns-bfp-protected" => Engines::uniform(
            mirage
                .protected_rns_gemm_engine(&REDUNDANT)
                .expect("redundant moduli")
                .with_injector(Arc::clone(injector)),
        ),
        other => unreachable!("unknown stack {other}"),
    }
}

/// The matching clean stack — same arithmetic, no injector — used to
/// compute the eager per-request ground truth.
fn clean_stack(mirage: &Mirage, name: &str) -> Engines {
    match name {
        "fp32" => Engines::uniform(ExactEngine),
        "bfp" => Engines::uniform(mirage.gemm_engine()),
        "rns-bfp" => Engines::uniform(mirage.rns_gemm_engine().expect("paper moduli")),
        "rns-bfp-protected" => Engines::uniform(
            mirage
                .protected_rns_gemm_engine(&REDUNDANT)
                .expect("redundant moduli"),
        ),
        other => unreachable!("unknown stack {other}"),
    }
}

/// A faulty compiled model, its tensor-sharded re-placement, and the
/// clean eager expectations every served response is judged against.
struct Fixture {
    dense: Arc<mirage::CompiledNetwork>,
    sharded: Arc<mirage::CompiledNetwork>,
    pool: Vec<(Tensor, Tensor)>,
}

fn fixture(faulty: &Engines, clean: &Engines, seed: u64) -> Fixture {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let mut net: Sequential = small_mlp(32, 16, 4, &mut rng);
    let dense = net.compile(faulty).expect("mlp compiles");
    let sharded = Arc::new(
        ShardPlan::new(&dense, &ShardSpec::tensor(2))
            .expect("placement is valid")
            .into_network(),
    );
    let pool: Vec<(Tensor, Tensor)> = (0..12)
        .map(|_| {
            let x = Tensor::randn(&[1, 32], 1.0, &mut rng);
            let y = net.forward(&x, clean).expect("clean eager forward");
            (x, y)
        })
        .collect();
    Fixture {
        dense: Arc::new(dense),
        sharded,
        pool,
    }
}

fn server_config(mode: BatchMode) -> ServerConfig {
    ServerConfig::default()
        .with_max_batch(8)
        .with_max_delay(Duration::from_micros(200))
        .with_batch_mode(mode)
}

/// Submits the whole pool concurrently (so flushes genuinely batch) and
/// returns each request's outcome alongside its expected clean output.
#[allow(clippy::type_complexity)]
fn serve_pool(
    server: &ModelServer,
    pool: &[(Tensor, Tensor)],
) -> Vec<(Result<(Tensor, RequestStats), ServeError>, Tensor)> {
    let pending: Vec<_> = pool
        .iter()
        .map(|(x, expected)| (server.submit(x.clone()).expect("admitted"), expected))
        .collect();
    pending
        .into_iter()
        .map(|(p, expected)| {
            let outcome = p.wait().map(|r| (r.output, r.stats));
            (outcome, expected.clone())
        })
        .collect()
}

#[test]
fn zero_rate_faults_are_bit_identical_and_draw_free_across_the_grid() {
    let mirage = Mirage::paper_default();
    for name in ["fp32", "bfp", "rns-bfp", "rns-bfp-protected"] {
        let injector = Arc::new(FaultInjector::new(FaultConfig::disabled(9000)));
        let fx = fixture(
            &faulty_stack(&mirage, name, &injector),
            &clean_stack(&mirage, name),
            9100,
        );
        for (placement, network) in [("dense", &fx.dense), ("tensor2", &fx.sharded)] {
            for mode in [BatchMode::PerItem, BatchMode::Stack] {
                let server =
                    ModelServer::new(Arc::clone(network), server_config(mode)).expect("starts");
                for (outcome, expected) in serve_pool(&server, &fx.pool) {
                    let (output, stats) = outcome.expect("zero-rate request served");
                    assert_eq!(
                        output.data(),
                        expected.data(),
                        "{name}/{placement}/{mode:?}: zero-rate serving must be \
                         bit-identical to the clean eager forward"
                    );
                    assert!(stats.faults.is_zero(), "{name}/{placement}/{mode:?}");
                }
                let stats = server.stats();
                assert_eq!(stats.failed, 0, "{name}/{placement}/{mode:?}");
                assert!(stats.faults.is_zero(), "{name}/{placement}/{mode:?}");
                server.join();
            }
        }
        assert_eq!(
            injector.draws(),
            0,
            "{name}: a disabled injector must consume no PRNG draws"
        );
    }
}

#[test]
fn unprotected_corruption_is_always_visible_in_the_accounting() {
    let mirage = Mirage::paper_default();
    for (gi, name) in UNPROTECTED.into_iter().enumerate() {
        for (placement, shard) in [("dense", false), ("tensor2", true)] {
            for mode in [BatchMode::PerItem, BatchMode::Stack] {
                let injector = Arc::new(FaultInjector::new(
                    FaultConfig::disabled(9200 + gi as u64).with_mantissa_flip_rate(0.1),
                ));
                let fx = fixture(
                    &faulty_stack(&mirage, name, &injector),
                    &clean_stack(&mirage, name),
                    9300,
                );
                let network = if shard { &fx.sharded } else { &fx.dense };
                let server =
                    ModelServer::new(Arc::clone(network), server_config(mode)).expect("starts");
                let mut corrupted = 0u32;
                for (outcome, expected) in serve_pool(&server, &fx.pool) {
                    // Unprotected engines never fail on corruption —
                    // they return the corrupted bits *and the count*.
                    let (output, stats) = outcome.expect("unprotected requests never error");
                    if output.data() != expected.data() {
                        corrupted += 1;
                        assert!(
                            stats.faults.injected > 0,
                            "{name}/{placement}/{mode:?}: a response deviated from the \
                             clean reference with no injected fault on record — \
                             SILENT corruption"
                        );
                    }
                    // Unprotected paths have no detector.
                    assert_eq!(stats.faults.detected, 0);
                    assert_eq!(stats.faults.uncorrectable, 0);
                }
                let stats = server.stats();
                assert_eq!(stats.failed, 0, "{name}/{placement}/{mode:?}");
                assert_eq!(stats.completed, fx.pool.len() as u64);
                assert!(
                    stats.faults.injected > 0,
                    "{name}/{placement}/{mode:?}: rate 0.1 over the pool must inject"
                );
                assert!(
                    corrupted > 0,
                    "{name}/{placement}/{mode:?}: injected faults must surface in outputs"
                );
                server.join();
            }
        }
    }
}

#[test]
fn protected_serving_corrects_or_refuses_but_never_lies() {
    let mirage = Mirage::paper_default();
    for (placement, shard) in [("dense", false), ("tensor2", true)] {
        for mode in [BatchMode::PerItem, BatchMode::Stack] {
            // Low rate: flips land mostly one-per-decode and must be
            // corrected back to the exact clean bits. Scan seeds so the
            // "at least one correction happened" assertion is not a
            // coin toss on a single stream.
            let mut corrected_total = 0u64;
            for seed in 0..4u64 {
                let injector = Arc::new(FaultInjector::new(
                    FaultConfig::disabled(9400 + seed).with_residue_flip_rate(0.004),
                ));
                let fx = fixture(
                    &faulty_stack(&mirage, "rns-bfp-protected", &injector),
                    &clean_stack(&mirage, "rns-bfp-protected"),
                    9500,
                );
                let network = if shard { &fx.sharded } else { &fx.dense };
                let server =
                    ModelServer::new(Arc::clone(network), server_config(mode)).expect("starts");
                let mut failed = 0u64;
                for (outcome, expected) in serve_pool(&server, &fx.pool) {
                    match outcome {
                        Ok((output, _)) => assert_eq!(
                            output.data(),
                            expected.data(),
                            "{placement}/{mode:?} seed {seed}: an Ok response under \
                             protection must be bit-identical — correction is exact"
                        ),
                        Err(ServeError::Uncorrectable { .. }) => failed += 1,
                        Err(other) => {
                            panic!("{placement}/{mode:?}: unexpected error {other:?}")
                        }
                    }
                }
                let stats = server.stats();
                assert_eq!(stats.failed, failed, "{placement}/{mode:?} seed {seed}");
                assert_eq!(
                    stats.completed + stats.failed,
                    fx.pool.len() as u64,
                    "{placement}/{mode:?} seed {seed}"
                );
                corrected_total += stats.faults.corrected;
                server.join();
            }
            assert!(
                corrected_total > 0,
                "{placement}/{mode:?}: the low-rate sweep must correct at least once"
            );

            // Heavy rate: multi-channel corruption per decode must be
            // *refused* — the typed Uncorrectable error, never a wrong
            // answer delivered as Ok.
            let injector = Arc::new(FaultInjector::new(
                FaultConfig::disabled(9600).with_residue_flip_rate(0.25),
            ));
            let fx = fixture(
                &faulty_stack(&mirage, "rns-bfp-protected", &injector),
                &clean_stack(&mirage, "rns-bfp-protected"),
                9500,
            );
            let network = if shard { &fx.sharded } else { &fx.dense };
            let server =
                ModelServer::new(Arc::clone(network), server_config(mode)).expect("starts");
            let mut failed = 0u64;
            for (outcome, expected) in serve_pool(&server, &fx.pool) {
                match outcome {
                    Ok((output, _)) => assert_eq!(
                        output.data(),
                        expected.data(),
                        "{placement}/{mode:?}: heavy corruption may only pass if corrected"
                    ),
                    Err(ServeError::Uncorrectable {
                        detected,
                        corrected,
                    }) => {
                        failed += 1;
                        assert!(detected > corrected, "{placement}/{mode:?}");
                    }
                    Err(other) => panic!("{placement}/{mode:?}: unexpected error {other:?}"),
                }
            }
            assert!(
                failed > 0,
                "{placement}/{mode:?}: rate 0.25 must overwhelm single-error correction"
            );
            let stats = server.stats();
            assert_eq!(stats.failed, failed);
            assert!(stats.faults.uncorrectable > 0);

            // The server survives the storm: disarm the injector and
            // the very next request is served bit-identically.
            injector.set_residue_flip_rate(0.0);
            let (x, expected) = &fx.pool[0];
            let response = server.infer(x.clone()).expect("served after the storm");
            assert_eq!(
                response.output.data(),
                expected.data(),
                "{placement}/{mode:?}: disarmed server must return to clean bits"
            );
            server.join();
        }
    }
}
