//! Fig. 1(b): energy per conversion for ADCs and DACs vs bit precision.

use criterion::Criterion;
use mirage_arch::converters::{adc_energy_per_conversion_j, dac_energy_per_conversion_j};
use mirage_bench::print_table;
use std::hint::black_box;

fn main() {
    let rows: Vec<Vec<String>> = (1..=14u32)
        .map(|bits| {
            vec![
                bits.to_string(),
                format!("{:.3e}", adc_energy_per_conversion_j(bits) * 1e15),
                format!("{:.3e}", dac_energy_per_conversion_j(bits) * 1e15),
                format!(
                    "{:.1}",
                    adc_energy_per_conversion_j(bits) / dac_energy_per_conversion_j(bits)
                ),
            ]
        })
        .collect();
    print_table(
        "Fig. 1(b) — converter energy per conversion (Murmann model)",
        &["bits", "ADC (fJ)", "DAC (fJ)", "ADC/DAC"],
        &rows,
    );
    println!("\nPaper shape: ADC energy ~4x per extra bit, two orders of");
    println!("magnitude above DACs at matched precision; a 16-bit conversion");
    println!(
        "costs {:.2} nJ (paper: >= 1 nJ).",
        adc_energy_per_conversion_j(16) * 1e9
    );

    let mut c = Criterion::default().sample_size(20).configure_from_args();
    c.bench_function("fig1/converter_energy_sweep", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for bits in 1..=16u32 {
                acc += adc_energy_per_conversion_j(black_box(bits));
                acc += dac_energy_per_conversion_j(black_box(bits));
            }
            acc
        })
    });
    c.final_summary();
}
