//! # mirage-bfp
//!
//! Block Floating Point (BFP) arithmetic for the Mirage photonic DNN
//! training accelerator (paper §II-B, §III step 2).
//!
//! BFP splits a tensor into groups of `g` elements; each group stores one
//! shared exponent and `g` signed `bm`-bit mantissae. Within a group the
//! arithmetic is pure integer arithmetic — exactly what an analog core can
//! execute — while the shared exponent preserves dynamic range across
//! groups. Mirage pairs BFP with the RNS so those integer dot products
//! survive low-precision converters without loss.
//!
//! ## Quick start
//!
//! ```
//! use mirage_bfp::{BfpConfig, BfpBlock};
//!
//! let cfg = BfpConfig::new(4, 16)?; // the paper's chosen operating point
//! let xs = [0.51f32, -0.23, 0.08, 1.92];
//! let block = BfpBlock::quantize(&xs, cfg);
//! let back = block.dequantize();
//! for (a, b) in xs.iter().zip(&back) {
//!     assert!((a - b).abs() < 0.15); // bm = 4 keeps ~2 decimal digits
//! }
//! # Ok::<(), mirage_bfp::BfpError>(())
//! ```

#![deny(unsafe_code)]
#![deny(missing_docs)]
#![deny(unused_must_use)]

mod block;
mod config;
mod error;
mod math;
mod packed;
pub mod simd;
mod stats;
mod vector;

pub use block::{BfpBlock, BfpDotProduct};
pub use config::{BfpConfig, RoundingMode};
pub use error::BfpError;
pub use math::pow2;
pub use packed::{group_dot, group_dot_i16, group_dot_i32, PackedBfpMatrix};
pub use simd::{GemmTail, SimdPolicy, SimdTier};
pub use stats::QuantizationStats;
pub use vector::BfpVector;

/// Result alias for fallible BFP operations.
pub type Result<T> = std::result::Result<T, BfpError>;
