//! # mirage-core
//!
//! The Mirage accelerator: an RNS-based photonic DNN training
//! accelerator (Demirkiran et al., ISCA 2024). This crate binds the
//! substrates together into the paper's system:
//!
//! - [`Mirage`] — the accelerator object: configuration, training
//!   engines implementing the Fig. 2 dataflow, performance / power /
//!   area reports.
//! - [`PhotonicGemmEngine`] — a GEMM engine that executes every tile on
//!   the *device-level* photonic simulator (phase accumulation, phase
//!   detection, reverse conversion), bit-identical to the fast BFP
//!   engine when noise is off.
//! - [`InferenceSession`] — serving-oriented inference with prepared
//!   weights cached per layer, so repeated requests against static
//!   weights never re-run the quantizer.
//! - [`ModelSession`] / [`Mirage::compile`] — the same idea for whole
//!   networks: a `Sequential` is frozen once into an immutable compiled
//!   execution plan (`mirage_nn::CompiledNetwork`) and served lock-free
//!   from any number of threads, bit-identically to the eager forward
//!   pass, with zero weight-side quantization per request.
//! - [`serve`] — the online serving front end: [`serve::ModelServer`]
//!   turns concurrent single requests into coalesced batches (bounded
//!   queue, `max_batch`/`max_delay` dynamic batching, admission
//!   control, per-request accounting) without ever changing a
//!   request's bits; its [`serve::BatchPolicy`] is a pure state
//!   machine driven by an injected [`serve::Clock`], so every flush
//!   rule is tested on a virtual clock.
//! - [`report`] — evaluation summaries used by the benchmark harness.
//!
//! GEMMs run on the tiled multi-threaded execution layer by default:
//! [`Mirage::training_engines`] and [`Mirage::parallel_gemm_engine`]
//! wrap the BFP arithmetic in `mirage_tensor::parallel::ParallelGemm`
//! (bit-identical to serial), and [`Mirage::infer_batch`] amortizes
//! setup across a whole inference batch inside one thread scope.
//!
//! ```
//! use mirage_core::Mirage;
//! use mirage_tensor::{Tensor, engines::ExactEngine, GemmEngine};
//!
//! let mirage = Mirage::paper_default();
//! let a = Tensor::from_vec(vec![0.5, -1.0, 0.25, 0.75], &[2, 2])?;
//! let b = Tensor::from_vec(vec![1.0, 0.5, -0.5, 0.25], &[2, 2])?;
//! // Train-time GEMM through the Mirage arithmetic (BFP + RNS):
//! let c = mirage.gemm_engine().gemm(&a, &b)?;
//! assert!(c.allclose(&ExactEngine.gemm(&a, &b)?, 0.1));
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]
#![deny(unused_must_use)]

mod accelerator;
pub mod dataflow;
mod photonic_gemm;
pub mod report;
pub mod serve;
mod session;

pub use accelerator::Mirage;
pub use dataflow::{StepTrace, TiledMvm};
pub use photonic_gemm::PhotonicGemmEngine;
pub use serve::{BatchMode, ModelServer, ServeError, ServerConfig, ServerStats};
pub use session::{InferenceSession, ModelSession};
