//! Convolution and pooling lowered onto GEMM.
//!
//! The paper's accuracy model (§V-A) "swapped each GEMM operation, i.e.,
//! convolution and linear layers, with customized BFP versions". We do
//! the same: conv2d is lowered via im2col so the configured
//! [`GemmEngine`] sees every convolution as a GEMM, in both the forward
//! and backward pass.
//!
//! Because the engine is pluggable, the lowering picks up the tiled
//! multi-threaded execution layer for free: pass a
//! [`crate::parallel::ParallelGemm`]-wrapped engine and the im2col GEMM
//! — whose `b·oh·ow` patch rows dwarf the other dimensions — fans out
//! across worker threads bit-identically for tile-invariant engines.

use crate::engines::GemmEngine;
use crate::{Result, Tensor, TensorError};

/// Geometry of a 2-D convolution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Conv2dGeometry {
    /// Input channels.
    pub in_channels: usize,
    /// Output channels.
    pub out_channels: usize,
    /// Square kernel size.
    pub kernel: usize,
    /// Stride.
    pub stride: usize,
    /// Zero padding on each side.
    pub padding: usize,
}

impl Conv2dGeometry {
    /// Output spatial size for an `h × w` input.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::InvalidGeometry`] if the kernel does not
    /// fit inside the padded input.
    pub fn output_size(&self, h: usize, w: usize) -> Result<(usize, usize)> {
        let ph = h + 2 * self.padding;
        let pw = w + 2 * self.padding;
        if self.kernel == 0 || self.stride == 0 || self.kernel > ph || self.kernel > pw {
            return Err(TensorError::InvalidGeometry(format!(
                "kernel {}x{} stride {} does not fit {}x{} input with padding {}",
                self.kernel, self.kernel, self.stride, h, w, self.padding
            )));
        }
        Ok((
            (ph - self.kernel) / self.stride + 1,
            (pw - self.kernel) / self.stride + 1,
        ))
    }

    /// The GEMM reduction length: `in_channels * kernel^2`.
    pub fn patch_len(&self) -> usize {
        self.in_channels * self.kernel * self.kernel
    }
}

/// Unfolds `[b, c, h, w]` into patch rows `[(b*oh*ow), (c*k*k)]`.
///
/// # Errors
///
/// Returns [`TensorError::RankMismatch`] for non-rank-4 input or
/// geometry errors from [`Conv2dGeometry::output_size`].
pub fn im2col(input: &Tensor, geo: &Conv2dGeometry) -> Result<Tensor> {
    if input.rank() != 4 {
        return Err(TensorError::RankMismatch {
            expected: 4,
            actual: input.rank(),
        });
    }
    let [b, c, h, w]: [usize; 4] = [
        input.shape()[0],
        input.shape()[1],
        input.shape()[2],
        input.shape()[3],
    ];
    if c != geo.in_channels {
        return Err(TensorError::DimMismatch {
            left: c,
            right: geo.in_channels,
        });
    }
    let (oh, ow) = geo.output_size(h, w)?;
    let k = geo.kernel;
    let pad = geo.padding as isize;
    let mut out = vec![0.0f32; b * oh * ow * c * k * k];
    let row_len = c * k * k;
    let data = input.data();
    for bi in 0..b {
        for oy in 0..oh {
            for ox in 0..ow {
                let row = ((bi * oh + oy) * ow + ox) * row_len;
                for ci in 0..c {
                    for ky in 0..k {
                        let iy = (oy * geo.stride + ky) as isize - pad;
                        for kx in 0..k {
                            let ix = (ox * geo.stride + kx) as isize - pad;
                            let dst = row + (ci * k + ky) * k + kx;
                            if iy >= 0 && (iy as usize) < h && ix >= 0 && (ix as usize) < w {
                                out[dst] =
                                    data[((bi * c + ci) * h + iy as usize) * w + ix as usize];
                            }
                        }
                    }
                }
            }
        }
    }
    Tensor::from_vec(out, &[b * oh * ow, row_len])
}

/// Folds patch rows back into `[b, c, h, w]`, summing overlaps —
/// the adjoint of [`im2col`], used for input gradients.
///
/// # Errors
///
/// Returns shape/geometry errors analogous to [`im2col`].
pub fn col2im(cols: &Tensor, geo: &Conv2dGeometry, b: usize, h: usize, w: usize) -> Result<Tensor> {
    let (oh, ow) = geo.output_size(h, w)?;
    let c = geo.in_channels;
    let k = geo.kernel;
    let row_len = c * k * k;
    if cols.shape() != [b * oh * ow, row_len] {
        return Err(TensorError::ShapeMismatch {
            left: cols.shape().to_vec(),
            right: vec![b * oh * ow, row_len],
        });
    }
    let pad = geo.padding as isize;
    let mut out = vec![0.0f32; b * c * h * w];
    let data = cols.data();
    for bi in 0..b {
        for oy in 0..oh {
            for ox in 0..ow {
                let row = ((bi * oh + oy) * ow + ox) * row_len;
                for ci in 0..c {
                    for ky in 0..k {
                        let iy = (oy * geo.stride + ky) as isize - pad;
                        for kx in 0..k {
                            let ix = (ox * geo.stride + kx) as isize - pad;
                            if iy >= 0 && (iy as usize) < h && ix >= 0 && (ix as usize) < w {
                                out[((bi * c + ci) * h + iy as usize) * w + ix as usize] +=
                                    data[row + (ci * k + ky) * k + kx];
                            }
                        }
                    }
                }
            }
        }
    }
    Tensor::from_vec(out, &[b, c, h, w])
}

/// Forward convolution: `[b, c, h, w] * [oc, c, k, k] -> [b, oc, oh, ow]`
/// with the GEMM routed through `engine`.
///
/// # Errors
///
/// Propagates shape and engine errors.
pub fn conv2d_forward(
    input: &Tensor,
    weight: &Tensor,
    geo: &Conv2dGeometry,
    engine: &dyn GemmEngine,
) -> Result<Tensor> {
    let b = input.shape()[0];
    let (oh, ow) = geo.output_size(input.shape()[2], input.shape()[3])?;
    let cols = im2col(input, geo)?; // (b*oh*ow, ckk)
    let wmat = weight.reshape(&[geo.out_channels, geo.patch_len()])?;
    let out = engine.gemm(&cols, &wmat.transpose2d()?)?; // (b*oh*ow, oc)
    patches_to_nchw(out.data(), b, geo.out_channels, oh, ow)
}

/// [`conv2d_forward`] against a weight prepared once via
/// [`GemmEngine::prepare`] on the **transposed** `[ckk, oc]` weight
/// matrix (`weight.reshape([oc, ckk]).transpose2d()`): only the im2col
/// patches touch the engine's quantizer, the B-side state is reused from
/// the preparation. Bit-identical to [`conv2d_forward`] on the weight
/// the value was prepared from — this is the convolution step of a
/// compiled inference plan.
///
/// # Errors
///
/// Returns [`TensorError::ShapeMismatch`] when the prepared matrix does
/// not have shape `[patch_len, out_channels]`, plus the usual shape and
/// engine errors.
pub fn conv2d_forward_prepared(
    input: &Tensor,
    prepared: &crate::PreparedRhs,
    geo: &Conv2dGeometry,
    engine: &dyn GemmEngine,
) -> Result<Tensor> {
    if prepared.k() != geo.patch_len() || prepared.n() != geo.out_channels {
        return Err(TensorError::ShapeMismatch {
            left: vec![prepared.k(), prepared.n()],
            right: vec![geo.patch_len(), geo.out_channels],
        });
    }
    let b = input.shape()[0];
    let (oh, ow) = geo.output_size(input.shape()[2], input.shape()[3])?;
    let cols = im2col(input, geo)?;
    let out = engine.gemm_prepared(&cols, prepared)?;
    patches_to_nchw(out.data(), b, geo.out_channels, oh, ow)
}

/// Permutes GEMM output rows `(b*oh*ow, oc)` into `[b, oc, oh, ow]` —
/// the layout step shared by the eager and prepared conv forwards.
fn patches_to_nchw(od: &[f32], b: usize, oc_n: usize, oh: usize, ow: usize) -> Result<Tensor> {
    let mut perm = vec![0.0f32; b * oc_n * oh * ow];
    for bi in 0..b {
        for oy in 0..oh {
            for ox in 0..ow {
                let src = ((bi * oh + oy) * ow + ox) * oc_n;
                for oc in 0..oc_n {
                    perm[((bi * oc_n + oc) * oh + oy) * ow + ox] = od[src + oc];
                }
            }
        }
    }
    Tensor::from_vec(perm, &[b, oc_n, oh, ow])
}

/// Gradients of a convolution given upstream `d_out: [b, oc, oh, ow]`.
///
/// Returns `(d_input, d_weight)`. Both GEMMs (`∆W = ∆Oᵀ·cols` and
/// `∆X = col2im(∆O·W)`) go through `engine`, matching the paper's
/// backward-pass quantization (Eqs. 2–3 in BFP).
///
/// # Errors
///
/// Propagates shape and engine errors.
pub fn conv2d_backward(
    input: &Tensor,
    weight: &Tensor,
    d_out: &Tensor,
    geo: &Conv2dGeometry,
    engine: &dyn GemmEngine,
) -> Result<(Tensor, Tensor)> {
    let [b, _c, h, w] = [
        input.shape()[0],
        input.shape()[1],
        input.shape()[2],
        input.shape()[3],
    ];
    let (oh, ow) = geo.output_size(h, w)?;
    // Permute d_out to (b*oh*ow, oc).
    let mut dmat = vec![0.0f32; b * oh * ow * geo.out_channels];
    let dd = d_out.data();
    for bi in 0..b {
        for oc in 0..geo.out_channels {
            for oy in 0..oh {
                for ox in 0..ow {
                    dmat[((bi * oh + oy) * ow + ox) * geo.out_channels + oc] =
                        dd[((bi * geo.out_channels + oc) * oh + oy) * ow + ox];
                }
            }
        }
    }
    let dmat = Tensor::from_vec(dmat, &[b * oh * ow, geo.out_channels])?;
    let cols = im2col(input, geo)?;

    // ∆W = ∆Oᵀ · cols  -> (oc, ckk)
    let dw = engine.gemm(&dmat.transpose2d()?, &cols)?;
    let dw = dw.reshape(&[geo.out_channels, geo.in_channels, geo.kernel, geo.kernel])?;

    // ∆cols = ∆O · W -> (b*oh*ow, ckk); fold back to the input.
    let wmat = weight.reshape(&[geo.out_channels, geo.patch_len()])?;
    let dcols = engine.gemm(&dmat, &wmat)?;
    let dx = col2im(&dcols, geo, b, h, w)?;
    Ok((dx, dw))
}

/// Max-pooling forward: returns the pooled tensor and flat argmax
/// indices (into the input) for the backward pass.
///
/// # Errors
///
/// Returns geometry errors when the window does not fit.
pub fn maxpool2d_forward(
    input: &Tensor,
    kernel: usize,
    stride: usize,
) -> Result<(Tensor, Vec<usize>)> {
    if input.rank() != 4 {
        return Err(TensorError::RankMismatch {
            expected: 4,
            actual: input.rank(),
        });
    }
    let [b, c, h, w] = [
        input.shape()[0],
        input.shape()[1],
        input.shape()[2],
        input.shape()[3],
    ];
    if kernel == 0 || stride == 0 || kernel > h || kernel > w {
        return Err(TensorError::InvalidGeometry(format!(
            "pool {kernel}x{kernel}/{stride} does not fit {h}x{w}"
        )));
    }
    let oh = (h - kernel) / stride + 1;
    let ow = (w - kernel) / stride + 1;
    let mut out = vec![f32::NEG_INFINITY; b * c * oh * ow];
    let mut arg = vec![0usize; b * c * oh * ow];
    let data = input.data();
    for bi in 0..b {
        for ci in 0..c {
            for oy in 0..oh {
                for ox in 0..ow {
                    let dst = ((bi * c + ci) * oh + oy) * ow + ox;
                    for ky in 0..kernel {
                        for kx in 0..kernel {
                            let src = ((bi * c + ci) * h + oy * stride + ky) * w + ox * stride + kx;
                            if data[src] > out[dst] {
                                out[dst] = data[src];
                                arg[dst] = src;
                            }
                        }
                    }
                }
            }
        }
    }
    Ok((Tensor::from_vec(out, &[b, c, oh, ow])?, arg))
}

/// Max-pooling backward: scatters upstream gradients to the argmax
/// positions recorded by [`maxpool2d_forward`].
///
/// # Errors
///
/// Returns [`TensorError::ShapeMismatch`] if `d_out` does not match the
/// recorded indices.
pub fn maxpool2d_backward(
    d_out: &Tensor,
    argmax: &[usize],
    input_shape: &[usize],
) -> Result<Tensor> {
    if d_out.len() != argmax.len() {
        return Err(TensorError::ShapeMismatch {
            left: d_out.shape().to_vec(),
            right: vec![argmax.len()],
        });
    }
    let mut dx = vec![0.0f32; input_shape.iter().product()];
    for (&g, &idx) in d_out.data().iter().zip(argmax) {
        dx[idx] += g;
    }
    Tensor::from_vec(dx, input_shape)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engines::ExactEngine;
    use rand::SeedableRng;

    fn geo(c: usize, oc: usize, k: usize, s: usize, p: usize) -> Conv2dGeometry {
        Conv2dGeometry {
            in_channels: c,
            out_channels: oc,
            kernel: k,
            stride: s,
            padding: p,
        }
    }

    /// Direct (non-GEMM) convolution as a reference.
    fn conv_reference(input: &Tensor, weight: &Tensor, g: &Conv2dGeometry) -> Tensor {
        let [b, c, h, w] = [
            input.shape()[0],
            input.shape()[1],
            input.shape()[2],
            input.shape()[3],
        ];
        let (oh, ow) = g.output_size(h, w).unwrap();
        let mut out = Tensor::zeros(&[b, g.out_channels, oh, ow]);
        for bi in 0..b {
            for oc in 0..g.out_channels {
                for oy in 0..oh {
                    for ox in 0..ow {
                        let mut acc = 0.0;
                        for ci in 0..c {
                            for ky in 0..g.kernel {
                                for kx in 0..g.kernel {
                                    let iy = (oy * g.stride + ky) as isize - g.padding as isize;
                                    let ix = (ox * g.stride + kx) as isize - g.padding as isize;
                                    if iy >= 0 && (iy as usize) < h && ix >= 0 && (ix as usize) < w
                                    {
                                        acc += input.at(&[bi, ci, iy as usize, ix as usize])
                                            * weight.at(&[oc, ci, ky, kx]);
                                    }
                                }
                            }
                        }
                        *out.at_mut(&[bi, oc, oy, ox]) = acc;
                    }
                }
            }
        }
        out
    }

    #[test]
    fn output_size() {
        let g = geo(3, 8, 3, 1, 1);
        assert_eq!(g.output_size(32, 32).unwrap(), (32, 32));
        let g2 = geo(3, 8, 3, 2, 0);
        assert_eq!(g2.output_size(7, 7).unwrap(), (3, 3));
        assert!(geo(1, 1, 9, 1, 0).output_size(4, 4).is_err());
    }

    #[test]
    fn conv_matches_direct_reference() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(60);
        for (c, oc, k, s, p, h, w) in [
            (1, 1, 1, 1, 0, 4, 4),
            (2, 3, 3, 1, 1, 6, 5),
            (3, 4, 3, 2, 1, 8, 8),
            (1, 2, 5, 1, 2, 7, 7),
        ] {
            let g = geo(c, oc, k, s, p);
            let x = Tensor::randn(&[2, c, h, w], 1.0, &mut rng);
            let wt = Tensor::randn(&[oc, c, k, k], 0.5, &mut rng);
            let got = conv2d_forward(&x, &wt, &g, &ExactEngine).unwrap();
            let want = conv_reference(&x, &wt, &g);
            assert!(got.allclose(&want, 1e-4), "{c},{oc},{k},{s},{p}");
        }
    }

    #[test]
    fn im2col_col2im_adjoint() {
        // <im2col(x), y> == <x, col2im(y)> — the defining adjoint property
        // that makes the backward pass correct.
        let mut rng = rand::rngs::StdRng::seed_from_u64(61);
        let g = geo(2, 1, 3, 1, 1);
        let x = Tensor::randn(&[1, 2, 5, 5], 1.0, &mut rng);
        let cols = im2col(&x, &g).unwrap();
        let y = Tensor::randn(cols.shape(), 1.0, &mut rng);
        let lhs: f32 = cols.data().iter().zip(y.data()).map(|(a, b)| a * b).sum();
        let folded = col2im(&y, &g, 1, 5, 5).unwrap();
        let rhs: f32 = x.data().iter().zip(folded.data()).map(|(a, b)| a * b).sum();
        assert!((lhs - rhs).abs() < 1e-3, "{lhs} vs {rhs}");
    }

    #[test]
    fn conv_backward_matches_finite_difference() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(62);
        let g = geo(2, 2, 3, 1, 1);
        let x = Tensor::randn(&[1, 2, 4, 4], 1.0, &mut rng);
        let wt = Tensor::randn(&[2, 2, 3, 3], 0.5, &mut rng);
        // Loss = sum(conv(x, w)); d_out = ones.
        let out = conv2d_forward(&x, &wt, &g, &ExactEngine).unwrap();
        let d_out = Tensor::ones(out.shape());
        let (dx, dw) = conv2d_backward(&x, &wt, &d_out, &g, &ExactEngine).unwrap();

        let eps = 1e-2;
        let loss = |x: &Tensor, w: &Tensor| conv2d_forward(x, w, &g, &ExactEngine).unwrap().sum();
        // Spot-check a few weight coordinates.
        for idx in [[0usize, 0, 0, 0], [1, 1, 2, 2], [0, 1, 1, 0]] {
            let mut wp = wt.clone();
            *wp.at_mut(&idx) += eps;
            let num = (loss(&x, &wp) - loss(&x, &wt)) / eps;
            assert!((num - dw.at(&idx)).abs() < 0.05, "dw at {idx:?}");
        }
        // And a few input coordinates.
        for idx in [[0usize, 0, 0, 0], [0, 1, 3, 3], [0, 0, 2, 1]] {
            let mut xp = x.clone();
            *xp.at_mut(&idx) += eps;
            let num = (loss(&xp, &wt) - loss(&x, &wt)) / eps;
            assert!((num - dx.at(&idx)).abs() < 0.05, "dx at {idx:?}");
        }
    }

    #[test]
    fn maxpool_forward_and_backward() {
        let x = Tensor::from_vec(
            vec![
                1.0, 2.0, 5.0, 3.0, //
                4.0, 0.0, 1.0, 2.0, //
                7.0, 1.0, 0.0, 1.0, //
                2.0, 3.0, 4.0, 6.0,
            ],
            &[1, 1, 4, 4],
        )
        .unwrap();
        let (y, arg) = maxpool2d_forward(&x, 2, 2).unwrap();
        assert_eq!(y.data(), &[4.0, 5.0, 7.0, 6.0]);
        let d = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[1, 1, 2, 2]).unwrap();
        let dx = maxpool2d_backward(&d, &arg, &[1, 1, 4, 4]).unwrap();
        assert_eq!(dx.at(&[0, 0, 1, 0]), 1.0); // 4.0 position
        assert_eq!(dx.at(&[0, 0, 0, 2]), 2.0); // 5.0 position
        assert_eq!(dx.at(&[0, 0, 2, 0]), 3.0); // 7.0 position
        assert_eq!(dx.at(&[0, 0, 3, 3]), 4.0); // 6.0 position
        assert_eq!(dx.sum(), 10.0);
    }

    #[test]
    fn conv_through_parallel_engine_is_bit_identical() {
        use crate::parallel::TileConfig;
        let mut rng = rand::rngs::StdRng::seed_from_u64(63);
        let g = geo(3, 8, 3, 1, 1);
        let x = Tensor::randn(&[2, 3, 12, 12], 1.0, &mut rng);
        let wt = Tensor::randn(&[8, 3, 3, 3], 0.5, &mut rng);
        let serial = conv2d_forward(&x, &wt, &g, &ExactEngine).unwrap();
        let tiled = ExactEngine.parallel_with(TileConfig {
            tile_m: 32,
            tile_n: 4,
            tile_k: 0,
            threads: 4,
        });
        let parallel = conv2d_forward(&x, &wt, &g, &tiled).unwrap();
        assert_eq!(parallel.data(), serial.data());

        let d_out = Tensor::ones(serial.shape());
        let (dx_s, dw_s) = conv2d_backward(&x, &wt, &d_out, &g, &ExactEngine).unwrap();
        let (dx_p, dw_p) = conv2d_backward(&x, &wt, &d_out, &g, &tiled).unwrap();
        assert_eq!(dx_p.data(), dx_s.data());
        assert_eq!(dw_p.data(), dw_s.data());
    }

    #[test]
    fn maxpool_rejects_bad_geometry() {
        let x = Tensor::zeros(&[1, 1, 2, 2]);
        assert!(maxpool2d_forward(&x, 3, 1).is_err());
        assert!(maxpool2d_forward(&x, 0, 1).is_err());
    }
}

/// Global average pooling: `[b, c, h, w] -> [b, c]` (ResNet/MobileNet
/// classifier heads).
///
/// # Errors
///
/// Returns [`TensorError::RankMismatch`] for non-rank-4 input.
pub fn global_avgpool2d(input: &Tensor) -> Result<Tensor> {
    if input.rank() != 4 {
        return Err(TensorError::RankMismatch {
            expected: 4,
            actual: input.rank(),
        });
    }
    let [b, c, h, w] = [
        input.shape()[0],
        input.shape()[1],
        input.shape()[2],
        input.shape()[3],
    ];
    let area = (h * w).max(1) as f32;
    let mut out = vec![0.0f32; b * c];
    for bi in 0..b {
        for ci in 0..c {
            let base = (bi * c + ci) * h * w;
            out[bi * c + ci] = input.data()[base..base + h * w].iter().sum::<f32>() / area;
        }
    }
    Tensor::from_vec(out, &[b, c])
}

/// Backward of [`global_avgpool2d`]: spreads each `[b, c]` gradient
/// uniformly over its spatial window.
///
/// # Errors
///
/// Returns [`TensorError::ShapeMismatch`] when shapes disagree.
pub fn global_avgpool2d_backward(d_out: &Tensor, input_shape: &[usize]) -> Result<Tensor> {
    if input_shape.len() != 4 || d_out.shape() != [input_shape[0], input_shape[1]] {
        return Err(TensorError::ShapeMismatch {
            left: d_out.shape().to_vec(),
            right: input_shape.to_vec(),
        });
    }
    let [b, c, h, w] = [
        input_shape[0],
        input_shape[1],
        input_shape[2],
        input_shape[3],
    ];
    let area = (h * w).max(1) as f32;
    let mut dx = vec![0.0f32; b * c * h * w];
    for bi in 0..b {
        for ci in 0..c {
            let g = d_out.data()[bi * c + ci] / area;
            let base = (bi * c + ci) * h * w;
            dx[base..base + h * w].fill(g);
        }
    }
    Tensor::from_vec(dx, input_shape)
}

#[cfg(test)]
mod avgpool_tests {
    use super::*;

    #[test]
    fn global_avgpool_means() {
        let x = Tensor::from_vec(
            vec![1.0, 2.0, 3.0, 4.0, 10.0, 20.0, 30.0, 40.0],
            &[1, 2, 2, 2],
        )
        .unwrap();
        let y = global_avgpool2d(&x).unwrap();
        assert_eq!(y.shape(), &[1, 2]);
        assert_eq!(y.data(), &[2.5, 25.0]);
    }

    #[test]
    fn global_avgpool_adjoint() {
        // <pool(x), g> == <x, pool_backward(g)>.
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(64);
        let x = Tensor::randn(&[2, 3, 4, 4], 1.0, &mut rng);
        let g = Tensor::randn(&[2, 3], 1.0, &mut rng);
        let lhs: f32 = global_avgpool2d(&x)
            .unwrap()
            .data()
            .iter()
            .zip(g.data())
            .map(|(a, b)| a * b)
            .sum();
        let dx = global_avgpool2d_backward(&g, x.shape()).unwrap();
        let rhs: f32 = x.data().iter().zip(dx.data()).map(|(a, b)| a * b).sum();
        assert!((lhs - rhs).abs() < 1e-4);
    }

    #[test]
    fn global_avgpool_validates() {
        assert!(global_avgpool2d(&Tensor::zeros(&[2, 2])).is_err());
        assert!(global_avgpool2d_backward(&Tensor::zeros(&[2, 2]), &[2, 3, 4, 4]).is_err());
    }
}
