//! A minimal, dependency-free stand-in for the `criterion` crate.
//!
//! The evaluation environment has no network access to crates.io, so the
//! bench harness vendors the API subset it uses: [`Criterion`] with
//! `sample_size` / `configure_from_args` / `bench_function` /
//! `final_summary`, the [`Bencher`] with `iter`, and [`black_box`].
//!
//! Timing is wall-clock ([`std::time::Instant`]) with a short warm-up;
//! each sample times a batch sized to at least ~200 µs so fast kernels
//! still measure above timer resolution. Reported statistics are
//! min / median / mean over the samples.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::time::{Duration, Instant};

/// Prevents the optimizer from deleting a value or the computation that
/// produced it. Re-exported for API parity with the real crate.
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// The benchmark driver.
pub struct Criterion {
    sample_size: usize,
    filter: Option<String>,
    ran: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 20,
            filter: None,
            ran: 0,
        }
    }
}

impl Criterion {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Applies command-line configuration. Recognises an optional
    /// positional filter (substring match on benchmark ids) and ignores
    /// harness flags such as `--bench` that cargo passes to
    /// `harness = false` binaries.
    pub fn configure_from_args(mut self) -> Self {
        for arg in std::env::args().skip(1) {
            if !arg.starts_with('-') {
                self.filter = Some(arg);
            }
        }
        self
    }

    /// Benchmarks `routine`, printing one summary line.
    pub fn bench_function<F>(&mut self, id: &str, mut routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        if let Some(f) = &self.filter {
            if !id.contains(f.as_str()) {
                return self;
            }
        }
        let mut bencher = Bencher {
            sample_size: self.sample_size,
            samples: Vec::new(),
        };
        routine(&mut bencher);
        self.ran += 1;
        report(id, &mut bencher.samples);
        self
    }

    /// Prints the closing summary line.
    pub fn final_summary(&self) {
        println!("benchmarks complete: {} run", self.ran);
    }
}

/// Times the routine under benchmark.
pub struct Bencher {
    sample_size: usize,
    samples: Vec<Duration>,
}

impl Bencher {
    /// Calls `routine` repeatedly and records per-iteration wall time.
    pub fn iter<O, F>(&mut self, mut routine: F)
    where
        F: FnMut() -> O,
    {
        // Warm-up and batch sizing: grow the batch until one batch takes
        // at least ~200 µs (or a cap, for slow routines).
        let mut batch = 1u32;
        loop {
            let start = Instant::now();
            for _ in 0..batch {
                std::hint::black_box(routine());
            }
            let elapsed = start.elapsed();
            if elapsed >= Duration::from_micros(200) || batch >= 1 << 20 {
                break;
            }
            batch *= 2;
        }
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..batch {
                std::hint::black_box(routine());
            }
            self.samples.push(start.elapsed() / batch);
        }
    }
}

fn report(id: &str, samples: &mut [Duration]) {
    if samples.is_empty() {
        println!("{id:<40} (no samples)");
        return;
    }
    samples.sort_unstable();
    let min = samples[0];
    let median = samples[samples.len() / 2];
    let mean = samples.iter().sum::<Duration>() / samples.len() as u32;
    println!(
        "{id:<40} min {:>10} | median {:>10} | mean {:>10} ({} samples)",
        fmt_duration(min),
        fmt_duration(median),
        fmt_duration(mean),
        samples.len()
    );
}

fn fmt_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 1_000 {
        format!("{nanos} ns")
    } else if nanos < 1_000_000 {
        format!("{:.2} µs", nanos as f64 / 1e3)
    } else if nanos < 1_000_000_000 {
        format!("{:.2} ms", nanos as f64 / 1e6)
    } else {
        format!("{:.3} s", nanos as f64 / 1e9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_counts() {
        let mut c = Criterion::default().sample_size(3);
        let mut calls = 0u64;
        c.bench_function("smoke/add", |b| {
            b.iter(|| {
                calls += 1;
                black_box(2u64 + 2)
            })
        });
        assert_eq!(c.ran, 1);
        assert!(calls > 0);
        c.final_summary();
    }
}
