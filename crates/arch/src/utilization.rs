//! Spatial-utilization analysis (paper Fig. 6).

use crate::config::MirageConfig;
use crate::dataflow::{Dataflow, TileGrid};
use crate::workload::{TrainingGemm, Workload};

/// MAC-slot utilization of one GEMM on Mirage: real MACs divided by the
/// MAC slots provisioned while the GEMM runs (padding in ragged tiles
/// and idle units in the last round both count as waste).
pub fn gemm_utilization(cfg: &MirageConfig, grid: &TileGrid) -> f64 {
    if grid.tiles == 0 || grid.streamed == 0 {
        return 0.0;
    }
    let rounds = grid.tiles.div_ceil(cfg.num_units);
    let provisioned = (rounds * cfg.num_units * cfg.rows * cfg.g) as f64 * grid.streamed as f64;
    let busy = grid.stationary_elems as f64 * grid.streamed as f64;
    busy / provisioned
}

/// Average spatial utilization over a whole training step, weighted by
/// each GEMM's provisioned time. Each GEMM uses its best (DF1/DF2)
/// mapping, matching how Fig. 6 is swept at fixed `g = 16`.
pub fn workload_utilization(cfg: &MirageConfig, workload: &Workload) -> f64 {
    let mut busy = 0.0f64;
    let mut provisioned = 0.0f64;
    for layer in &workload.layers {
        for kind in TrainingGemm::ALL {
            let shape = layer.gemm(kind);
            // Pick the dataflow with higher utilization (equivalently
            // the lower provisioned-slot count).
            let best = Dataflow::MIRAGE
                .iter()
                .map(|&df| TileGrid::for_gemm(shape, df, cfg.rows, cfg.g))
                .min_by(|a, b| {
                    let pa = a.tiles.div_ceil(cfg.num_units) as f64 * a.streamed as f64;
                    let pb = b.tiles.div_ceil(cfg.num_units) as f64 * b.streamed as f64;
                    pa.partial_cmp(&pb).expect("finite")
                })
                .expect("dataflow set non-empty");
            let rounds = best.tiles.div_ceil(cfg.num_units);
            provisioned +=
                (rounds * cfg.num_units * cfg.rows * cfg.g) as f64 * best.streamed as f64;
            busy += best.stationary_elems as f64 * best.streamed as f64;
        }
    }
    if provisioned == 0.0 {
        0.0
    } else {
        busy / provisioned
    }
}

/// Sweeps utilization versus the number of MDPUs per MMVMU
/// (Fig. 6(a)); all other parameters from `base`.
pub fn sweep_rows(base: &MirageConfig, workload: &Workload, rows: &[usize]) -> Vec<(usize, f64)> {
    rows.iter()
        .map(|&r| {
            let cfg = base.clone().with_geometry(base.num_units, r, base.g);
            (r, workload_utilization(&cfg, workload))
        })
        .collect()
}

/// Sweeps utilization versus the number of RNS-MMVMUs (Fig. 6(b)).
pub fn sweep_units(base: &MirageConfig, workload: &Workload, units: &[usize]) -> Vec<(usize, f64)> {
    units
        .iter()
        .map(|&u| {
            let cfg = base.clone().with_geometry(u, base.rows, base.g);
            (u, workload_utilization(&cfg, workload))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::WorkloadLayer;

    fn wl(layers: Vec<(usize, usize, usize)>) -> Workload {
        Workload::new(
            "t",
            1,
            layers
                .into_iter()
                .enumerate()
                .map(|(i, (m, k, n))| WorkloadLayer::new(format!("l{i}"), m, k, n))
                .collect(),
        )
    }

    #[test]
    fn perfect_fit_is_full_utilization() {
        let cfg = MirageConfig::default();
        let w = wl(vec![(256, 256, 256)]);
        let u = workload_utilization(&cfg, &w);
        assert!((u - 1.0).abs() < 1e-12, "u = {u}");
    }

    #[test]
    fn small_layers_underutilize() {
        let cfg = MirageConfig::default();
        let w = wl(vec![(4, 4, 16)]);
        let u = workload_utilization(&cfg, &w);
        assert!(u < 0.05, "u = {u}");
        assert!(u > 0.0);
    }

    #[test]
    fn utilization_declines_with_more_rows() {
        // Fig. 6(a): beyond some point, taller arrays stop helping.
        let cfg = MirageConfig::default();
        let w = wl(vec![(96, 363, 3025), (256, 2304, 729), (10, 1024, 256)]);
        let sweep = sweep_rows(&cfg, &w, &[8, 16, 32, 64, 128, 256]);
        let first = sweep.first().unwrap().1;
        let last = sweep.last().unwrap().1;
        assert!(last < first, "sweep = {sweep:?}");
    }

    #[test]
    fn utilization_declines_with_more_units() {
        let cfg = MirageConfig::default();
        let w = wl(vec![(96, 363, 3025), (256, 2304, 729)]);
        let sweep = sweep_units(&cfg, &w, &[2, 4, 8, 16, 32, 64, 128, 256]);
        let first = sweep.first().unwrap().1;
        let last = sweep.last().unwrap().1;
        assert!(last < first, "sweep = {sweep:?}");
        // Monotone non-increasing overall trend at the tail.
        assert!(sweep[7].1 <= sweep[4].1 + 1e-9);
    }

    #[test]
    fn empty_workload() {
        let cfg = MirageConfig::default();
        assert_eq!(workload_utilization(&cfg, &wl(vec![])), 0.0);
    }
}
