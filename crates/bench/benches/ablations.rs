//! Ablations of Mirage design choices called out in DESIGN.md:
//! 1. MRR-switched MMUs vs reprogram-every-cycle phase shifters.
//! 2. Special moduli set vs arbitrary co-prime set (conversion cost).
//! 3. Redundant RNS overhead vs protection.

use criterion::Criterion;
use mirage_arch::latency::mirage_step_latency_s;
use mirage_arch::{DataflowPolicy, MirageConfig};
use mirage_bench::print_table;
use mirage_models::zoo;
use mirage_rns::convert::{CrtConverter, ForwardConverter, ReverseConverter};
use mirage_rns::{ModuliSet, RedundantRns, SpecialSetConverter};
use std::hint::black_box;

fn main() {
    // --- Ablation 1: data stationarity via MRR switches (§IV-A1). ---
    // Without MRR switches, *every* MVM needs a phase-shifter
    // reprogramming (5 ns for the low-loss NOEMS devices), capping the
    // effective MVM rate at ~1/(5 ns) instead of 10 GHz.
    let cfg = MirageConfig::default();
    let mut slow = cfg.clone();
    slow.photonics.clock_hz = 1.0 / slow.photonics.phase_shifter.reprogram_time_s;
    let rows: Vec<Vec<String>> = zoo::all_workloads(256)
        .into_iter()
        .map(|w| {
            let fast = mirage_step_latency_s(&cfg, &w, DataflowPolicy::Opt2);
            let slow_t = mirage_step_latency_s(&slow, &w, DataflowPolicy::Opt2);
            vec![
                w.name.clone(),
                format!("{:.3e}", fast),
                format!("{:.3e}", slow_t),
                format!("{:.1}x", slow_t / fast),
            ]
        })
        .collect();
    print_table(
        "Ablation 1 — MRR-switched (10 GHz) vs reprogram-every-cycle (200 MHz) MMUs",
        &["model", "with MRRs (s)", "without (s)", "slowdown"],
        &rows,
    );

    // --- Ablation 2: special vs arbitrary moduli set conversions. ---
    let special = SpecialSetConverter::new(5).expect("k = 5 valid");
    let arbitrary_set = ModuliSet::new(&[29, 31, 37]).expect("co-prime");
    let arbitrary = CrtConverter::new(&arbitrary_set);
    println!("\nAblation 2 — conversion-path cost is benchmarked below; both");
    println!("paths are verified bit-exact in the test suite. The special set");
    println!("reduces hardware to shift-adds (Hiasat); in software the win is");
    println!("visible as cheaper reverse conversion.");

    // --- Ablation 3: RRNS overhead. ---
    let base = ModuliSet::special_set(5).expect("valid");
    let rrns = RedundantRns::new(&[31, 32, 33], &[37, 41]).expect("valid");
    let extra = rrns.full_set().len() as f64 / base.len() as f64;
    println!(
        "\nAblation 3 — RRNS with 2 redundant moduli: {:.2}x component count",
        extra
    );
    println!("(power/area scale ~linearly with moduli count; throughput is");
    println!("unchanged) in exchange for single-residue error correction.");

    let mut c = Criterion::default().sample_size(20).configure_from_args();
    c.bench_function("ablation2/special_reverse_conversion", |b| {
        let residues = special.to_residues(12345);
        b.iter(|| special.to_unsigned(black_box(&residues)).expect("valid"))
    });
    c.bench_function("ablation2/crt_reverse_conversion", |b| {
        let residues = arbitrary.to_residues(12345);
        b.iter(|| arbitrary.to_unsigned(black_box(&residues)).expect("valid"))
    });
    c.bench_function("ablation3/rrns_correct_clean", |b| {
        let res = rrns.encode(1234).expect("in range");
        b.iter(|| rrns.correct(black_box(&res)).expect("clean"))
    });
    c.final_summary();
}
