//! Direct unit coverage for `mirage_bench::stats` — the percentile
//! helpers the load benchmarks report through. Edge cases first: the
//! empty distribution, the single sample, and the p0/p100 endpoints
//! must be exact, because they anchor every latency table.

use mirage_bench::stats::{percentile, percentile_sorted};

#[test]
fn empty_distributions_report_zero() {
    assert_eq!(percentile(&[], 0.0), 0.0);
    assert_eq!(percentile(&[], 50.0), 0.0);
    assert_eq!(percentile(&[], 100.0), 0.0);
    assert_eq!(percentile_sorted(&[], 99.9), 0.0);
}

#[test]
fn a_single_sample_is_every_percentile() {
    for p in [0.0, 1.0, 50.0, 99.0, 100.0, -3.0, 250.0] {
        assert_eq!(percentile(&[42.5], p), 42.5);
        assert_eq!(percentile_sorted(&[42.5], p), 42.5);
    }
}

#[test]
fn p0_and_p100_are_the_exact_extremes() {
    let samples = [9.0, -2.0, 4.0, 4.0, 0.5];
    assert_eq!(percentile(&samples, 0.0), -2.0);
    assert_eq!(percentile(&samples, 100.0), 9.0);
    // Out-of-range p clamps to the same extremes.
    assert_eq!(percentile(&samples, -50.0), -2.0);
    assert_eq!(percentile(&samples, 1e9), 9.0);
}

#[test]
fn unsorted_input_matches_the_presorted_fast_path() {
    let samples = [3.0, 1.0, 4.0, 1.5, 9.0, 2.6];
    let mut sorted = samples.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
    for p in [0.0, 10.0, 25.0, 50.0, 75.0, 90.0, 100.0] {
        assert_eq!(percentile(&samples, p), percentile_sorted(&sorted, p));
    }
}

#[test]
fn interpolation_is_linear_between_closest_ranks() {
    // Ranks of [10, 20, 30, 40] sit at p ∈ {0, 33.3.., 66.6.., 100}.
    let sorted = [10.0, 20.0, 30.0, 40.0];
    assert_eq!(percentile_sorted(&sorted, 50.0), 25.0);
    assert!((percentile_sorted(&sorted, 75.0) - 32.5).abs() < 1e-12);
    // Duplicated samples flatten the interpolation where they repeat.
    let flat = [1.0, 5.0, 5.0, 5.0, 9.0];
    assert_eq!(percentile_sorted(&flat, 50.0), 5.0);
    assert_eq!(percentile_sorted(&flat, 37.5), 5.0);
}
