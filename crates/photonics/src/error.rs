use std::error::Error;
use std::fmt;

/// Errors produced by the photonic simulation.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum PhotonicsError {
    /// An operand is not a reduced residue for the unit's modulus.
    UnreducedOperand {
        /// The operand value.
        value: u64,
        /// The modulus.
        modulus: u64,
    },
    /// Vector length mismatch in a dot product or MVM.
    LengthMismatch {
        /// Expected length.
        expected: usize,
        /// Actual length.
        actual: usize,
    },
    /// Propagated RNS error (conversion, moduli sets).
    Rns(mirage_rns::RnsError),
    /// A physical parameter is out of range (negative power, zero
    /// bandwidth, ...).
    InvalidParameter(String),
}

impl fmt::Display for PhotonicsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PhotonicsError::UnreducedOperand { value, modulus } => {
                write!(f, "operand {value} is not a residue modulo {modulus}")
            }
            PhotonicsError::LengthMismatch { expected, actual } => {
                write!(f, "length mismatch: expected {expected}, got {actual}")
            }
            PhotonicsError::Rns(e) => write!(f, "rns error: {e}"),
            PhotonicsError::InvalidParameter(msg) => write!(f, "invalid parameter: {msg}"),
        }
    }
}

impl Error for PhotonicsError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            PhotonicsError::Rns(e) => Some(e),
            _ => None,
        }
    }
}

impl From<mirage_rns::RnsError> for PhotonicsError {
    fn from(e: mirage_rns::RnsError) -> Self {
        PhotonicsError::Rns(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = PhotonicsError::from(mirage_rns::RnsError::EmptySet);
        assert!(e.source().is_some());
        assert!(PhotonicsError::InvalidParameter("x".into())
            .source()
            .is_none());
    }
}
