//! Row-major `f32` tensors.

use crate::{Result, TensorError};
use std::fmt;

/// A dense row-major tensor of `f32` values.
///
/// Shapes are arbitrary-rank, but most accelerator-facing operations
/// (GEMM, tiling) work on rank-2 views; convolutions use rank-4
/// `[batch, channels, height, width]`.
///
/// ```
/// use mirage_tensor::Tensor;
///
/// let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3])?;
/// assert_eq!(t.at(&[1, 2]), 6.0);
/// assert_eq!(t.transpose2d()?.at(&[2, 1]), 6.0);
/// # Ok::<(), mirage_tensor::TensorError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Tensor {
    shape: Vec<usize>,
    data: Vec<f32>,
}

impl Tensor {
    /// Creates a tensor from data and shape.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeDataMismatch`] if the element count
    /// does not match the shape product.
    pub fn from_vec(data: Vec<f32>, shape: &[usize]) -> Result<Self> {
        let expected: usize = shape.iter().product();
        if data.len() != expected {
            return Err(TensorError::ShapeDataMismatch {
                expected,
                actual: data.len(),
            });
        }
        Ok(Tensor {
            shape: shape.to_vec(),
            data,
        })
    }

    /// All-zeros tensor.
    pub fn zeros(shape: &[usize]) -> Self {
        Tensor {
            shape: shape.to_vec(),
            data: vec![0.0; shape.iter().product()],
        }
    }

    /// All-ones tensor.
    pub fn ones(shape: &[usize]) -> Self {
        Tensor {
            shape: shape.to_vec(),
            data: vec![1.0; shape.iter().product()],
        }
    }

    /// Tensor filled with a constant.
    pub fn full(shape: &[usize], value: f32) -> Self {
        Tensor {
            shape: shape.to_vec(),
            data: vec![value; shape.iter().product()],
        }
    }

    /// Tensor of uniform random values in `[-scale, scale)` from a
    /// caller-supplied RNG (kept generic so callers control determinism).
    pub fn rand_uniform(shape: &[usize], scale: f32, rng: &mut impl rand::RngExt) -> Self {
        let n: usize = shape.iter().product();
        let data = (0..n)
            .map(|_| (rng.random::<f32>() * 2.0 - 1.0) * scale)
            .collect();
        Tensor {
            shape: shape.to_vec(),
            data,
        }
    }

    /// Tensor of Gaussian random values (Box–Muller; no external
    /// distribution crate needed).
    pub fn randn(shape: &[usize], std: f32, rng: &mut impl rand::RngExt) -> Self {
        let n: usize = shape.iter().product();
        let mut data = Vec::with_capacity(n);
        while data.len() < n {
            let u1: f32 = rng.random::<f32>().max(1e-12f32);
            let u2: f32 = rng.random::<f32>();
            let r = (-2.0 * u1.ln()).sqrt();
            let theta = 2.0 * std::f32::consts::PI * u2;
            data.push(r * theta.cos() * std);
            if data.len() < n {
                data.push(r * theta.sin() * std);
            }
        }
        Tensor {
            shape: shape.to_vec(),
            data,
        }
    }

    /// The shape.
    pub fn shape(&self) -> &[usize] {
        &self.shape
    }

    /// Rank (number of dimensions).
    pub fn rank(&self) -> usize {
        self.shape.len()
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the tensor has zero elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Immutable view of the underlying data (row-major).
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the underlying data (row-major).
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the tensor and returns its data.
    pub fn into_data(self) -> Vec<f32> {
        self.data
    }

    /// Element access by multi-dimensional index.
    ///
    /// # Panics
    ///
    /// Panics if the index rank or any coordinate is out of bounds.
    pub fn at(&self, index: &[usize]) -> f32 {
        self.data[self.offset(index)]
    }

    /// Mutable element access by multi-dimensional index.
    ///
    /// # Panics
    ///
    /// Panics if the index rank or any coordinate is out of bounds.
    pub fn at_mut(&mut self, index: &[usize]) -> &mut f32 {
        let off = self.offset(index);
        &mut self.data[off]
    }

    fn offset(&self, index: &[usize]) -> usize {
        assert_eq!(index.len(), self.shape.len(), "index rank mismatch");
        let mut off = 0;
        for (i, (&ix, &dim)) in index.iter().zip(&self.shape).enumerate() {
            assert!(
                ix < dim,
                "index {ix} out of bounds for dim {i} (size {dim})"
            );
            off = off * dim + ix;
        }
        off
    }

    /// Reinterprets the tensor with a new shape of equal element count.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeDataMismatch`] if the products differ.
    pub fn reshape(&self, shape: &[usize]) -> Result<Tensor> {
        let expected: usize = shape.iter().product();
        if expected != self.data.len() {
            return Err(TensorError::ShapeDataMismatch {
                expected,
                actual: self.data.len(),
            });
        }
        Ok(Tensor {
            shape: shape.to_vec(),
            data: self.data.clone(),
        })
    }

    /// Number of rows of a rank-2 tensor.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::RankMismatch`] for non-rank-2 tensors.
    pub fn rows(&self) -> Result<usize> {
        self.require_rank(2)?;
        Ok(self.shape[0])
    }

    /// Number of columns of a rank-2 tensor.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::RankMismatch`] for non-rank-2 tensors.
    pub fn cols(&self) -> Result<usize> {
        self.require_rank(2)?;
        Ok(self.shape[1])
    }

    /// A row slice of a rank-2 tensor.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not rank-2 or `r` is out of bounds.
    pub fn row(&self, r: usize) -> &[f32] {
        assert_eq!(self.rank(), 2, "row() requires a rank-2 tensor");
        let cols = self.shape[1];
        &self.data[r * cols..(r + 1) * cols]
    }

    /// Transpose of a rank-2 tensor.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::RankMismatch`] for non-rank-2 tensors.
    pub fn transpose2d(&self) -> Result<Tensor> {
        self.require_rank(2)?;
        let (m, n) = (self.shape[0], self.shape[1]);
        let mut out = vec![0.0; m * n];
        // Tiled traversal: both the reads and the writes of a 32×32
        // tile stay within a few cache lines, instead of one side
        // striding through the whole matrix (the B-side packing of
        // every quantized GEMM transposes, so this is a hot path).
        const T: usize = 32;
        for i0 in (0..m).step_by(T) {
            for j0 in (0..n).step_by(T) {
                for i in i0..(i0 + T).min(m) {
                    for j in j0..(j0 + T).min(n) {
                        out[j * m + i] = self.data[i * n + j];
                    }
                }
            }
        }
        Ok(Tensor {
            shape: vec![n, m],
            data: out,
        })
    }

    /// Element-wise map.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Tensor {
        Tensor {
            shape: self.shape.clone(),
            data: self.data.iter().map(|&v| f(v)).collect(),
        }
    }

    /// Element-wise binary operation.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if shapes differ.
    pub fn zip_with(&self, other: &Tensor, f: impl Fn(f32, f32) -> f32) -> Result<Tensor> {
        if self.shape != other.shape {
            return Err(TensorError::ShapeMismatch {
                left: self.shape.clone(),
                right: other.shape.clone(),
            });
        }
        Ok(Tensor {
            shape: self.shape.clone(),
            data: self
                .data
                .iter()
                .zip(&other.data)
                .map(|(&a, &b)| f(a, b))
                .collect(),
        })
    }

    /// Element-wise sum.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if shapes differ.
    pub fn add(&self, other: &Tensor) -> Result<Tensor> {
        self.zip_with(other, |a, b| a + b)
    }

    /// Element-wise difference.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if shapes differ.
    pub fn sub(&self, other: &Tensor) -> Result<Tensor> {
        self.zip_with(other, |a, b| a - b)
    }

    /// Scales every element.
    pub fn scale(&self, s: f32) -> Tensor {
        self.map(|v| v * s)
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Mean of all elements (0 for empty tensors).
    pub fn mean(&self) -> f32 {
        if self.data.is_empty() {
            0.0
        } else {
            self.sum() / self.data.len() as f32
        }
    }

    /// Largest absolute element (0 for empty tensors).
    pub fn max_abs(&self) -> f32 {
        self.data.iter().fold(0.0f32, |m, &v| m.max(v.abs()))
    }

    /// Approximate equality: all elements within `tol` absolutely *or*
    /// relatively.
    pub fn allclose(&self, other: &Tensor, tol: f32) -> bool {
        self.shape == other.shape
            && self.data.iter().zip(&other.data).all(|(&a, &b)| {
                let diff = (a - b).abs();
                diff <= tol || diff <= tol * a.abs().max(b.abs())
            })
    }
}

impl fmt::Display for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Tensor{:?} (", self.shape)?;
        let preview: Vec<String> = self
            .data
            .iter()
            .take(8)
            .map(|v| format!("{v:.4}"))
            .collect();
        write!(f, "{}", preview.join(", "))?;
        if self.data.len() > 8 {
            write!(f, ", …")?;
        }
        write!(f, ")")
    }
}

impl Tensor {
    fn require_rank(&self, rank: usize) -> Result<()> {
        if self.rank() != rank {
            return Err(TensorError::RankMismatch {
                expected: rank,
                actual: self.rank(),
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn from_vec_validates_shape() {
        assert!(Tensor::from_vec(vec![1.0; 6], &[2, 3]).is_ok());
        assert!(matches!(
            Tensor::from_vec(vec![1.0; 5], &[2, 3]),
            Err(TensorError::ShapeDataMismatch {
                expected: 6,
                actual: 5
            })
        ));
    }

    #[test]
    fn indexing_row_major() {
        let t = Tensor::from_vec((0..24).map(|v| v as f32).collect(), &[2, 3, 4]).unwrap();
        assert_eq!(t.at(&[0, 0, 0]), 0.0);
        assert_eq!(t.at(&[1, 2, 3]), 23.0);
        assert_eq!(t.at(&[1, 0, 2]), 14.0);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn indexing_out_of_bounds_panics() {
        let t = Tensor::zeros(&[2, 2]);
        t.at(&[2, 0]);
    }

    #[test]
    fn transpose_round_trip() {
        let t = Tensor::from_vec((0..6).map(|v| v as f32).collect(), &[2, 3]).unwrap();
        let tt = t.transpose2d().unwrap();
        assert_eq!(tt.shape(), &[3, 2]);
        assert_eq!(tt.transpose2d().unwrap(), t);
        assert_eq!(tt.at(&[2, 1]), t.at(&[1, 2]));
    }

    #[test]
    fn transpose_requires_rank2() {
        assert!(Tensor::zeros(&[2, 2, 2]).transpose2d().is_err());
    }

    #[test]
    fn elementwise_ops() {
        let a = Tensor::from_vec(vec![1.0, 2.0], &[2]).unwrap();
        let b = Tensor::from_vec(vec![3.0, 5.0], &[2]).unwrap();
        assert_eq!(a.add(&b).unwrap().data(), &[4.0, 7.0]);
        assert_eq!(b.sub(&a).unwrap().data(), &[2.0, 3.0]);
        assert_eq!(a.scale(2.0).data(), &[2.0, 4.0]);
        assert!(a.add(&Tensor::zeros(&[3])).is_err());
    }

    #[test]
    fn reductions() {
        let t = Tensor::from_vec(vec![-3.0, 1.0, 2.0], &[3]).unwrap();
        assert_eq!(t.sum(), 0.0);
        assert_eq!(t.mean(), 0.0);
        assert_eq!(t.max_abs(), 3.0);
        assert_eq!(Tensor::zeros(&[0]).mean(), 0.0);
    }

    #[test]
    fn reshape_preserves_data() {
        let t = Tensor::from_vec((0..6).map(|v| v as f32).collect(), &[2, 3]).unwrap();
        let r = t.reshape(&[3, 2]).unwrap();
        assert_eq!(r.data(), t.data());
        assert!(t.reshape(&[4, 2]).is_err());
    }

    #[test]
    fn randn_statistics() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        let t = Tensor::randn(&[10_000], 1.0, &mut rng);
        let mean = t.mean();
        let var = t.data().iter().map(|v| (v - mean).powi(2)).sum::<f32>() / 10_000.0;
        assert!(mean.abs() < 0.05, "mean = {mean}");
        assert!((var - 1.0).abs() < 0.1, "var = {var}");
    }

    #[test]
    fn rand_uniform_bounds() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let t = Tensor::rand_uniform(&[1000], 0.5, &mut rng);
        assert!(t.max_abs() <= 0.5);
    }

    #[test]
    fn allclose_tolerates_small_differences() {
        let a = Tensor::from_vec(vec![1.0, 2.0], &[2]).unwrap();
        let b = Tensor::from_vec(vec![1.0 + 1e-6, 2.0 - 1e-6], &[2]).unwrap();
        assert!(a.allclose(&b, 1e-5));
        assert!(!a.allclose(&b, 1e-8));
        assert!(!a.allclose(&Tensor::zeros(&[3]), 1.0));
    }

    #[test]
    fn display_previews() {
        let t = Tensor::zeros(&[10]);
        let s = t.to_string();
        assert!(s.contains("Tensor[10]"));
        assert!(s.contains('…'));
    }

    #[test]
    fn row_access() {
        let t = Tensor::from_vec((0..6).map(|v| v as f32).collect(), &[2, 3]).unwrap();
        assert_eq!(t.row(1), &[3.0, 4.0, 5.0]);
    }
}
