//! BFP GEMM routed bit-exactly through RNS residues.

use super::bfp::BfpEngine;
use super::{gemm_dims, GemmEngine, PreparedRhs};
use crate::{Result, Tensor, TensorError};
use mirage_bfp::{pow2, BfpConfig, PackedBfpMatrix, SimdPolicy, SimdTier};
use mirage_rns::convert::{CrtConverter, ReverseConverter};
use mirage_rns::{simd as rns_simd, ModuliSet, ResiduePlane};
use std::sync::Arc;

/// A packed matrix forward-converted into the RNS domain: one flat
/// residue **plane** per modulus channel covering every group of every
/// row (same `rows × padded_k` geometry as the [`PackedBfpMatrix`] it
/// came from, padding lanes holding residue 0), plus the flat per-group
/// scale exponents. A channel's group dot is one
/// [`ResiduePlane::group_dot`] over two plane slices — no per-element
/// `Residue` construction, no per-group heap objects, and the narrowest
/// exact lane width the modulus permits.
#[derive(Debug)]
pub(crate) struct PackedRnsMatrix {
    pub(crate) rows: usize,
    pub(crate) k: usize,
    pub(crate) groups_per_row: usize,
    pub(crate) g: usize,
    /// One [`ResiduePlane`] per modulus channel.
    pub(crate) planes: Vec<ResiduePlane>,
    /// `rows * groups_per_row` shared scale exponents.
    pub(crate) scale_exps: Vec<i32>,
}

impl PackedRnsMatrix {
    /// Forward conversion (Fig. 2 step 2) of a whole packed matrix:
    /// each channel reduces the flat mantissa buffer in one pass.
    pub(crate) fn from_packed(packed: &PackedBfpMatrix, moduli: &ModuliSet) -> Self {
        let g = packed.config().group_size();
        let planes = moduli
            .moduli()
            .iter()
            .map(|&modulus| ResiduePlane::convert_i32(packed.mantissas(), modulus, g))
            .collect();
        PackedRnsMatrix {
            rows: packed.rows(),
            k: packed.k(),
            groups_per_row: packed.groups_per_row(),
            g,
            planes,
            scale_exps: packed.scale_exps().to_vec(),
        }
    }

    /// Flat offset of group `gi` of `row` within every channel plane.
    pub(crate) fn group_offset(&self, row: usize, gi: usize) -> usize {
        (row * self.groups_per_row + gi) * self.g
    }

    /// The shared scale exponent of group `gi` of `row`.
    pub(crate) fn scale_exp(&self, row: usize, gi: usize) -> i32 {
        self.scale_exps[row * self.groups_per_row + gi]
    }
}

/// Prepared B-side state: the columns of `B` quantized and pushed
/// through forward conversion into packed residue planes, tagged with
/// the operating point and moduli set that produced them.
/// `col_start`/`col_count` select a column range of the shared planes
/// (see [`super::bfp::PreparedBfpCols`] for the tiling story).
#[derive(Debug)]
struct PreparedRnsCols {
    config: BfpConfig,
    moduli: ModuliSet,
    packed: Arc<PackedRnsMatrix>,
    col_start: usize,
    col_count: usize,
}

/// The full Mirage numerical path: BFP mantissae → forward conversion →
/// per-modulus modular dot products → reverse conversion → FP32
/// accumulation (paper Fig. 2, steps 2–9).
///
/// Because the moduli set satisfies Eq. 13 for the configured `(bm, g)`,
/// this engine is **bit-identical** to [`BfpEngine`] — which is the
/// paper's central claim ("the DNN accuracy is determined by the chosen
/// bm and g and is independent of the exact values of the moduli",
/// §IV-B). The equivalence is enforced by tests.
///
/// Tile-invariant like [`BfpEngine`]: the residue round trip is exact
/// integer arithmetic per group, so [`crate::parallel::ParallelGemm`]
/// fans this engine across threads bit-identically.
///
/// ```
/// use mirage_tensor::{Tensor, GemmEngine, engines::RnsBfpEngine};
/// use mirage_bfp::BfpConfig;
///
/// let engine = RnsBfpEngine::with_min_special_set(BfpConfig::mirage_default())?;
/// assert_eq!(engine.moduli().special_k(), Some(5)); // {31, 32, 33}
/// # Ok::<(), mirage_tensor::TensorError>(())
/// ```
#[derive(Debug, Clone)]
pub struct RnsBfpEngine {
    config: BfpConfig,
    moduli: ModuliSet,
    converter: CrtConverter,
    simd: SimdPolicy,
}

impl RnsBfpEngine {
    /// Creates an engine from an explicit moduli set.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::InvalidGeometry`] if the set violates
    /// Eq. 13 for the BFP configuration — RNS results would wrap and the
    /// engine would silently corrupt dot products.
    pub fn new(config: BfpConfig, moduli: ModuliSet) -> Result<Self> {
        if !moduli.supports_dot_product(config.mantissa_bits(), config.group_size()) {
            return Err(TensorError::InvalidGeometry(format!(
                "moduli set {moduli} cannot hold a bm={}, g={} dot product (Eq. 13)",
                config.mantissa_bits(),
                config.group_size()
            )));
        }
        let converter = CrtConverter::new(&moduli);
        Ok(RnsBfpEngine {
            config,
            moduli,
            converter,
            simd: SimdPolicy::default(),
        })
    }

    /// Returns a copy with the given per-instance SIMD policy (see
    /// [`super::BfpEngine::with_simd_policy`] — the same narrowing
    /// semantics against the process-wide `MIRAGE_SIMD` knob, and the
    /// same bit-identity guarantee across tiers).
    pub fn with_simd_policy(mut self, simd: SimdPolicy) -> Self {
        self.simd = simd;
        self
    }

    /// This instance's SIMD policy.
    pub fn simd_policy(&self) -> SimdPolicy {
        self.simd
    }

    /// Creates an engine using the smallest special set `{2^k-1, 2^k,
    /// 2^k+1}` that satisfies Eq. 13 — the paper's moduli-selection rule.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::InvalidGeometry`] when no `k <= 20`
    /// suffices.
    pub fn with_min_special_set(config: BfpConfig) -> Result<Self> {
        let k = ModuliSet::min_special_k(config.mantissa_bits(), config.group_size()).ok_or_else(
            || {
                TensorError::InvalidGeometry(format!(
                    "no special moduli set supports bm={}, g={}",
                    config.mantissa_bits(),
                    config.group_size()
                ))
            },
        )?;
        let moduli = ModuliSet::special_set(k).map_err(TensorError::Rns)?;
        Self::new(config, moduli)
    }

    /// The BFP operating point.
    pub fn config(&self) -> BfpConfig {
        self.config
    }

    /// The moduli set in use.
    pub fn moduli(&self) -> &ModuliSet {
        &self.moduli
    }

    /// The shared flat GEMM kernel: quantizes and forward-converts the
    /// rows of `A` into packed residue planes, then dots them against an
    /// already-converted column range of `B`. Every step below the
    /// quantizer is exact integer arithmetic, so pre-converting either
    /// side cannot change a single bit. Shapes are validated once up
    /// front; the per-group work is one slice dot per modulus channel,
    /// one trusted CRT reverse conversion into a hoisted scratch vector,
    /// and one power-of-two scale — nothing in the loop allocates.
    fn gemm_with_packed(
        &self,
        a: &Tensor,
        cols: &PackedRnsMatrix,
        col_start: usize,
        n: usize,
    ) -> Result<Tensor> {
        let mut out = Vec::new();
        let m = self.gemm_with_packed_into(a, cols, col_start, n, &mut out)?;
        Tensor::from_vec(out, &[m, n])
    }

    /// [`RnsBfpEngine::gemm_with_packed`] writing into a caller buffer —
    /// the allocation-free entry point behind
    /// [`GemmEngine::gemm_prepared_into`]. Returns `m`.
    fn gemm_with_packed_into(
        &self,
        a: &Tensor,
        cols: &PackedRnsMatrix,
        col_start: usize,
        n: usize,
        out: &mut Vec<f32>,
    ) -> Result<usize> {
        let (m, k) = (a.shape()[0], a.shape()[1]);
        if cols.k != k {
            return Err(TensorError::DimMismatch {
                left: k,
                right: cols.k,
            });
        }
        debug_assert!(col_start + n <= cols.rows, "column range out of bounds");
        let moduli = self.moduli.moduli();
        // Quantize + forward-convert each activation group once, not
        // once per output column.
        let a_rns =
            PackedRnsMatrix::from_packed(&BfpEngine::pack_rows_wide(a, self.config), &self.moduli);

        out.clear();
        out.resize(m * n, 0.0);
        // The paper's 3-modulus special sets get a monomorphized kernel
        // (fixed channel count, and a constant group length for the
        // common `g`); everything else takes the generic loop. All
        // variants accumulate groups in ascending order per output
        // element, so results are bit-identical across dispatches.
        match (moduli.len(), a_rns.g) {
            (3, 16) => self.rns_blocks::<16>(&a_rns, cols, col_start, m, n, out),
            (3, 32) => self.rns_blocks::<32>(&a_rns, cols, col_start, m, n, out),
            _ => self.rns_generic(&a_rns, cols, col_start, m, n, out),
        }
        Ok(m)
    }

    /// The blocked 3-channel kernel: `JW` output columns per sweep,
    /// each with its own dot → CRT → scale chain, so the long per-group
    /// latency chains of neighbouring columns overlap. When every plane
    /// took the narrow `u16` tier and the CRT has fused `u64` constants
    /// (the paper's operating points), the whole group pipeline is
    /// inlined over raw slices — no per-dot tier dispatch, no per-group
    /// converter call.
    // mirage-lint: no_alloc
    fn rns_blocks<const G: usize>(
        &self,
        a_rns: &PackedRnsMatrix,
        cols: &PackedRnsMatrix,
        col_start: usize,
        m: usize,
        n: usize,
        out: &mut [f32],
    ) {
        const JW: usize = 8;
        let moduli = self.moduli.moduli();
        let (m0, m1, m2) = (moduli[0], moduli[1], moduli[2]);
        let (p0, p1, p2) = (&a_rns.planes[0], &a_rns.planes[1], &a_rns.planes[2]);
        let (q0, q1, q2) = (&cols.planes[0], &cols.planes[1], &cols.planes[2]);
        if let (Some(a0), Some(a1), Some(a2), Some(b0), Some(b1), Some(b2), Some(crt)) = (
            p0.as_u16(),
            p1.as_u16(),
            p2.as_u16(),
            q0.as_u16(),
            q1.as_u16(),
            q2.as_u16(),
            self.converter.small_constants(),
        ) {
            let (w0, w1, w2) = (crt.wi[0], crt.wi[1], crt.wi[2]);
            // One `u16` group dot, reduced divide-free. Pure integer by
            // contract — this is the arithmetic an MMVMU performs.
            // mirage-lint: region(int_kernel)
            #[inline(always)]
            fn dot<const G: usize>(a: &[u16], off_a: usize, b: &[u16], off_b: usize) -> u64 {
                let mut acc = 0u32;
                for (&x, &w) in a[off_a..off_a + G].iter().zip(&b[off_b..off_b + G]) {
                    acc += u32::from(x) * u32::from(w);
                }
                u64::from(acc)
            }
            // Fig. 2 step 7: the fused small-range CRT (identical
            // arithmetic to `to_signed_trusted`, constants hoisted),
            // shared by the scalar and vector dot paths — which feed it
            // bit-identical `u32` channel dots, so everything from here
            // down is tier-independent.
            let crt_signed = |d0: u64, d1: u64, d2: u64| -> i64 {
                let r0 = m0.fast_rem(d0);
                let r1 = m1.fast_rem(d1);
                let r2 = m2.fast_rem(d2);
                let s = crt.m.fast_rem(r0 * w0) + crt.m.fast_rem(r1 * w1) + crt.m.fast_rem(r2 * w2);
                let v = crt.m.fast_rem(s);
                if v > crt.psi {
                    v as i64 - crt.m.value() as i64
                } else {
                    v as i64
                }
            };
            // mirage-lint: end_region(int_kernel)
            // Vector residue dots when the tier, group size, and block
            // width allow: one `pmaddwd` sweep yields all 3 channels ×
            // 8 columns of exact `u32` dots (see `mirage_rns::simd` for
            // the exactness argument). Ragged tails and declined shapes
            // run the scalar dot — same integers either way.
            let tier = mirage_bfp::simd::resolve_tier(self.simd);
            let use8 = tier == SimdTier::Avx2 && G.is_multiple_of(16) && rns_simd::dot8_available();
            let use4 = tier >= SimdTier::Sse2 && G.is_multiple_of(8) && rns_simd::dot4_available();
            let stride = cols.groups_per_row * cols.g;
            let mut acc = [0.0f32; JW];
            for j0 in (0..n).step_by(JW) {
                let jw = (n - j0).min(JW);
                for i in 0..m {
                    acc[..jw].fill(0.0);
                    for gi in 0..a_rns.groups_per_row {
                        let a_off = a_rns.group_offset(i, gi);
                        let pa2 = pow2(a_rns.scale_exp(i, gi));
                        let b_base = cols.group_offset(col_start + j0, gi);
                        let mut dots = [[0u32; JW]; 3];
                        let vector = if jw != JW {
                            false
                        } else if use8 {
                            rns_simd::dot8x3_u16(
                                [a0, a1, a2],
                                a_off,
                                [b0, b1, b2],
                                b_base,
                                stride,
                                G,
                                &mut dots,
                            )
                        } else if use4 {
                            let mut lo = [[0u32; 4]; 3];
                            let mut hi = [[0u32; 4]; 3];
                            let ok = rns_simd::dot4x3_u16(
                                [a0, a1, a2],
                                a_off,
                                [b0, b1, b2],
                                b_base,
                                stride,
                                G,
                                &mut lo,
                            ) && rns_simd::dot4x3_u16(
                                [a0, a1, a2],
                                a_off,
                                [b0, b1, b2],
                                b_base + 4 * stride,
                                stride,
                                G,
                                &mut hi,
                            );
                            if ok {
                                for (d, (l, h)) in dots.iter_mut().zip(lo.iter().zip(hi.iter())) {
                                    d[..4].copy_from_slice(l);
                                    d[4..].copy_from_slice(h);
                                }
                            }
                            ok
                        } else {
                            false
                        };
                        if vector {
                            for (jj, slot) in acc.iter_mut().enumerate() {
                                let col = col_start + j0 + jj;
                                let integer = crt_signed(
                                    u64::from(dots[0][jj]),
                                    u64::from(dots[1][jj]),
                                    u64::from(dots[2][jj]),
                                );
                                // Fig. 2 step 8, exponent recombination.
                                let pb2 = pow2(cols.scale_exp(col, gi));
                                *slot += (integer as f64 * (pa2 * pb2)) as f32;
                            }
                        } else {
                            for (jj, slot) in acc[..jw].iter_mut().enumerate() {
                                let col = col_start + j0 + jj;
                                let b_off = cols.group_offset(col, gi);
                                // Fig. 2 steps 5-7: one modular dot per
                                // channel, then the fused CRT — exact
                                // integers up to the recombination.
                                let integer = crt_signed(
                                    dot::<G>(a0, a_off, b0, b_off),
                                    dot::<G>(a1, a_off, b1, b_off),
                                    dot::<G>(a2, a_off, b2, b_off),
                                );
                                // Fig. 2 step 8, exponent recombination.
                                let pb2 = pow2(cols.scale_exp(col, gi));
                                *slot += (integer as f64 * (pa2 * pb2)) as f32;
                            }
                        }
                    }
                    for (jj, &v) in acc[..jw].iter().enumerate() {
                        out[i * n + j0 + jj] = v;
                    }
                }
            }
            return;
        }
        let mut acc = [0.0f32; JW];
        for j0 in (0..n).step_by(JW) {
            let jw = (n - j0).min(JW);
            for i in 0..m {
                acc[..jw].fill(0.0);
                for gi in 0..a_rns.groups_per_row {
                    let a_off = a_rns.group_offset(i, gi);
                    let ae = a_rns.scale_exp(i, gi);
                    let pa2 = pow2(ae);
                    for (jj, slot) in acc[..jw].iter_mut().enumerate() {
                        let col = col_start + j0 + jj;
                        let b_off = cols.group_offset(col, gi);
                        // Fig. 2 steps 5-6: one modular dot per channel…
                        // mirage-lint: region(int_kernel)
                        let residues = [
                            p0.group_dot_fixed::<G>(a_off, q0, b_off, m0),
                            p1.group_dot_fixed::<G>(a_off, q1, b_off, m1),
                            p2.group_dot_fixed::<G>(a_off, q2, b_off, m2),
                        ];
                        // …step 7 reverse conversion, step 8 exponent
                        // recombination (pow2(ae)·pow2(be) is the exact
                        // power of two 2^(ae+be); see the BFP kernel).
                        // mirage-lint: allow(float_ok) -- CRT output is bounded by Eq. 13 (< 2^52), so the i64 -> f64 conversion is lossless
                        let integer = self.converter.to_signed_trusted(&residues) as f64;
                        // mirage-lint: end_region(int_kernel)
                        let pb2 = pow2(cols.scale_exp(col, gi));
                        *slot += (integer * (pa2 * pb2)) as f32;
                    }
                }
                for (jj, &v) in acc[..jw].iter().enumerate() {
                    out[i * n + j0 + jj] = v;
                }
            }
        }
    }

    /// The fully generic kernel: any channel count, any group size.
    // mirage-lint: no_alloc
    fn rns_generic(
        &self,
        a_rns: &PackedRnsMatrix,
        cols: &PackedRnsMatrix,
        col_start: usize,
        m: usize,
        n: usize,
        out: &mut [f32],
    ) {
        let moduli = self.moduli.moduli();
        let g = a_rns.g;
        // Per-group CRT scratch, hoisted out of every loop.
        // mirage-lint: allow(alloc_ok) -- one CRT scratch vector per GEMM call, hoisted out of all three loops
        let mut residues_out = vec![0u64; moduli.len()];
        for i in 0..m {
            for j in 0..n {
                let col = col_start + j;
                let mut acc = 0.0f32;
                for gi in 0..a_rns.groups_per_row {
                    let a_off = a_rns.group_offset(i, gi);
                    let b_off = cols.group_offset(col, gi);
                    // The modular dot products the MMVMUs compute
                    // (Fig. 2 steps 5-6), one per modulus channel.
                    // mirage-lint: region(int_kernel)
                    for (channel, &modulus) in moduli.iter().enumerate() {
                        residues_out[channel] = a_rns.planes[channel].group_dot(
                            a_off,
                            &cols.planes[channel],
                            b_off,
                            g,
                            modulus,
                        );
                    }
                    // Reverse conversion (Fig. 2 step 7) and exponent
                    // recombination (step 8).
                    // mirage-lint: allow(float_ok) -- CRT output is bounded by Eq. 13 (< 2^52), so the i64 -> f64 conversion is lossless
                    let integer = self.converter.to_signed_trusted(&residues_out) as f64;
                    // mirage-lint: end_region(int_kernel)
                    let scale_exp = a_rns.scale_exp(i, gi) + cols.scale_exp(col, gi);
                    acc += (integer * pow2(scale_exp)) as f32;
                }
                out[i * n + j] = acc;
            }
        }
    }

    /// Packs and forward-converts the columns of `B`.
    fn pack_cols(&self, b: &Tensor) -> Result<PackedRnsMatrix> {
        Ok(PackedRnsMatrix::from_packed(
            &BfpEngine::pack_cols_wide(b, self.config)?,
            &self.moduli,
        ))
    }
}

impl GemmEngine for RnsBfpEngine {
    fn name(&self) -> &'static str {
        "mirage-rns-bfp"
    }

    /// `true`: same per-row/per-column BFP grouping as [`BfpEngine`];
    /// the residue round trip is exact integer arithmetic per group.
    fn tile_invariant(&self) -> bool {
        true
    }

    fn gemm(&self, a: &Tensor, b: &Tensor) -> Result<Tensor> {
        let (_m, _k, n) = gemm_dims(a, b)?;
        // Forward conversion of the B side (in hardware: shift-based,
        // per §IV-B); the A side converts inside the shared kernel.
        let cols = self.pack_cols(b)?;
        self.gemm_with_packed(a, &cols, 0, n)
    }

    /// Quantizes **and** forward-converts the columns of `B` once: the
    /// prepared state holds packed residue planes, so repeated inference
    /// pays neither the quantizer nor the forward converter for the
    /// weights.
    fn prepare(&self, b: &Tensor) -> Result<PreparedRhs> {
        let prepared = PreparedRhs::from_raw(self.name(), b)?;
        let n = prepared.n();
        let packed = self.pack_cols(b)?;
        Ok(prepared.with_state(Arc::new(PreparedRnsCols {
            config: self.config,
            moduli: self.moduli.clone(),
            packed: Arc::new(packed),
            col_start: 0,
            col_count: n,
        })))
    }

    /// Slices a column tile out of an existing preparation: the tile
    /// shares the residue planes through the `Arc`, so the tiled
    /// parallel driver never re-converts B per column tile.
    fn prepare_tile(
        &self,
        whole: &PreparedRhs,
        c0: usize,
        width: usize,
    ) -> Result<Option<PreparedRhs>> {
        let Some(state) = whole.state_for::<PreparedRnsCols>(self.name()) else {
            return Ok(None);
        };
        if state.config != self.config
            || state.moduli != self.moduli
            || c0 + width > state.col_count
        {
            return Ok(None);
        }
        let raw = whole.slice_raw_cols(c0, width)?;
        Ok(Some(PreparedRhs::from_raw(self.name(), &raw)?.with_state(
            Arc::new(PreparedRnsCols {
                config: state.config,
                moduli: state.moduli.clone(),
                packed: Arc::clone(&state.packed),
                col_start: state.col_start + c0,
                col_count: width,
            }),
        )))
    }

    /// Reuses pre-converted weight residue planes. Falls back to
    /// [`RnsBfpEngine::gemm`] on preparations from other engines, other
    /// operating points, or other moduli sets.
    fn gemm_prepared(&self, a: &Tensor, b: &PreparedRhs) -> Result<Tensor> {
        let (_m, _k, n) = gemm_dims(a, b.raw())?;
        match b.state_for::<PreparedRnsCols>(self.name()) {
            Some(state)
                if state.config == self.config
                    && state.moduli == self.moduli
                    && state.col_count == n =>
            {
                self.gemm_with_packed(a, &state.packed, state.col_start, n)
            }
            _ => self.gemm(a, b.raw()),
        }
    }

    /// The flat RNS kernel writes straight into the caller's buffer —
    /// bit-identical to [`RnsBfpEngine::gemm_prepared`].
    fn gemm_prepared_into(
        &self,
        a: &Tensor,
        b: &PreparedRhs,
        out: &mut Vec<f32>,
    ) -> Result<(usize, usize)> {
        let (_m, _k, n) = gemm_dims(a, b.raw())?;
        match b.state_for::<PreparedRnsCols>(self.name()) {
            Some(state)
                if state.config == self.config
                    && state.moduli == self.moduli
                    && state.col_count == n =>
            {
                let m = self.gemm_with_packed_into(a, &state.packed, state.col_start, n, out)?;
                Ok((m, n))
            }
            _ => {
                let y = self.gemm(a, b.raw())?;
                let m = y.shape()[0];
                out.clear();
                out.extend_from_slice(y.data());
                Ok((m, n))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mirage_bfp::BfpBlock;
    use mirage_rns::residue;
    use rand::SeedableRng;

    /// The legacy per-group heap-object RNS GEMM, kept in tests as the
    /// oracle: `BfpBlock` chains, per-group `Vec<Vec<u64>>` residues,
    /// validated CRT reverse conversion, `exp2` recombination. (A
    /// sibling copy in `tests/parallel_determinism.rs` pins the same
    /// oracle across the parallel × prepared × batch grid — keep them
    /// in sync; the oracle is frozen legacy semantics.)
    fn legacy_rns_gemm(a: &Tensor, b: &Tensor, engine: &RnsBfpEngine) -> Tensor {
        let (m, n) = (a.shape()[0], b.shape()[1]);
        let moduli = engine.moduli().moduli();
        let converter = CrtConverter::new(engine.moduli());
        let convert = |blocks: Vec<Vec<BfpBlock>>| -> Vec<Vec<(i32, Vec<Vec<u64>>)>> {
            blocks
                .iter()
                .map(|groups| {
                    groups
                        .iter()
                        .map(|block| {
                            let wide = block.mantissas_i64();
                            (
                                block.scale_exp(),
                                moduli
                                    .iter()
                                    .map(|&md| residue::reduce_signed(&wide, md))
                                    .collect(),
                            )
                        })
                        .collect()
                })
                .collect()
        };
        let a_rows = convert(BfpEngine::quantize_rows(a, engine.config()));
        let b_cols = convert(BfpEngine::quantize_cols(b, engine.config()).unwrap());
        let mut out = vec![0.0f32; m * n];
        for (i, arow) in a_rows.iter().enumerate() {
            for (j, bcol) in b_cols.iter().enumerate() {
                let mut acc = 0.0f32;
                for ((ea, ga), (eb, gb)) in arow.iter().zip(bcol) {
                    let residues: Vec<u64> = moduli
                        .iter()
                        .enumerate()
                        .map(|(c, &md)| residue::dot_product(&ga[c], &gb[c], md).unwrap())
                        .collect();
                    let integer = converter.to_signed(&residues).unwrap() as f64;
                    acc += (integer * ((ea + eb) as f64).exp2()) as f32;
                }
                out[i * n + j] = acc;
            }
        }
        Tensor::from_vec(out, &[m, n]).unwrap()
    }

    #[test]
    fn flat_kernel_is_bit_identical_to_legacy_groups() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(30);
        let cfg = BfpConfig::mirage_default();
        for engine in [
            RnsBfpEngine::with_min_special_set(cfg).unwrap(),
            RnsBfpEngine::new(cfg, ModuliSet::new(&[11, 13, 16, 9]).unwrap()).unwrap(),
        ] {
            for (m, k, n) in [(1, 1, 1), (3, 19, 5), (5, 33, 7), (4, 64, 9)] {
                let a = Tensor::randn(&[m, k], 1.0, &mut rng);
                let b = Tensor::randn(&[k, n], 1.0, &mut rng);
                let flat = engine.gemm(&a, &b).unwrap();
                let legacy = legacy_rns_gemm(&a, &b, &engine);
                assert_eq!(flat.data(), legacy.data(), "{m}x{k}x{n}");
            }
        }
    }

    #[test]
    fn prepare_tile_slices_share_the_residue_planes() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(31);
        let engine = RnsBfpEngine::with_min_special_set(BfpConfig::mirage_default()).unwrap();
        let b = Tensor::randn(&[33, 14], 1.0, &mut rng);
        let whole = engine.prepare(&b).unwrap();
        let a = Tensor::randn(&[4, 33], 1.0, &mut rng);
        let full = engine.gemm(&a, &b).unwrap();
        for (c0, width) in [(0, 14), (3, 8), (9, 5)] {
            let tile = engine.prepare_tile(&whole, c0, width).unwrap().unwrap();
            let got = engine.gemm_prepared(&a, &tile).unwrap();
            for i in 0..4 {
                for j in 0..width {
                    assert_eq!(
                        got.data()[i * width + j].to_bits(),
                        full.data()[i * 14 + c0 + j].to_bits()
                    );
                }
            }
        }
        assert!(engine.prepare_tile(&whole, 10, 6).unwrap().is_none());
    }

    #[test]
    fn bit_identical_to_plain_bfp() {
        // The paper's core claim: RNS adds zero numerical error.
        let mut rng = rand::rngs::StdRng::seed_from_u64(21);
        let cfg = BfpConfig::mirage_default();
        let rns = RnsBfpEngine::with_min_special_set(cfg).unwrap();
        let bfp = BfpEngine::new(cfg);
        for (m, k, n) in [(4, 16, 4), (3, 50, 7), (8, 128, 8)] {
            let a = Tensor::randn(&[m, k], 1.0, &mut rng);
            let b = Tensor::randn(&[k, n], 1.0, &mut rng);
            let c_rns = rns.gemm(&a, &b).unwrap();
            let c_bfp = bfp.gemm(&a, &b).unwrap();
            assert_eq!(c_rns.data(), c_bfp.data(), "{m}x{k}x{n}");
        }
    }

    #[test]
    fn bit_identical_with_arbitrary_coprime_set() {
        // Accuracy is independent of the moduli values (§IV-B).
        let mut rng = rand::rngs::StdRng::seed_from_u64(22);
        let cfg = BfpConfig::new(4, 16).unwrap();
        let moduli = ModuliSet::new(&[11, 13, 16, 9]).unwrap(); // M = 20592 > 2*3600
        let rns = RnsBfpEngine::new(cfg, moduli).unwrap();
        let a = Tensor::randn(&[5, 32], 1.0, &mut rng);
        let b = Tensor::randn(&[32, 5], 1.0, &mut rng);
        let c_rns = rns.gemm(&a, &b).unwrap();
        let c_bfp = BfpEngine::new(cfg).gemm(&a, &b).unwrap();
        assert_eq!(c_rns.data(), c_bfp.data());
    }

    #[test]
    fn selects_paper_k_values() {
        // kmin = 4 for bm=3, 5 for bm=4, 6 for bm=5 (§VI-A1, at g=16).
        for (bm, expected_k) in [(3, 4), (4, 5), (5, 6)] {
            let cfg = BfpConfig::new(bm, 16).unwrap();
            let e = RnsBfpEngine::with_min_special_set(cfg).unwrap();
            assert_eq!(e.moduli().special_k(), Some(expected_k), "bm = {bm}");
        }
    }

    #[test]
    fn prepared_residues_are_bit_identical() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(23);
        let cfg = BfpConfig::mirage_default();
        let rns = RnsBfpEngine::with_min_special_set(cfg).unwrap();
        let b = Tensor::randn(&[40, 6], 1.0, &mut rng);
        let prepared = rns.prepare(&b).unwrap();
        for _ in 0..2 {
            let a = Tensor::randn(&[5, 40], 1.0, &mut rng);
            assert_eq!(
                rns.gemm_prepared(&a, &prepared).unwrap().data(),
                rns.gemm(&a, &b).unwrap().data()
            );
        }
    }

    #[test]
    fn prepared_from_different_moduli_falls_back() {
        // Same BFP point, different moduli sets: the consumer must not
        // interpret residues reduced by the wrong moduli.
        let mut rng = rand::rngs::StdRng::seed_from_u64(24);
        let cfg = BfpConfig::new(4, 16).unwrap();
        let special = RnsBfpEngine::with_min_special_set(cfg).unwrap();
        let coprime = RnsBfpEngine::new(cfg, ModuliSet::new(&[11, 13, 16, 9]).unwrap()).unwrap();
        let a = Tensor::randn(&[4, 32], 1.0, &mut rng);
        let b = Tensor::randn(&[32, 4], 1.0, &mut rng);
        let foreign = coprime.prepare(&b).unwrap();
        assert_eq!(
            special.gemm_prepared(&a, &foreign).unwrap().data(),
            special.gemm(&a, &b).unwrap().data()
        );
    }

    #[test]
    fn rejects_undersized_moduli() {
        let cfg = BfpConfig::new(5, 64).unwrap();
        let too_small = ModuliSet::special_set(4).unwrap();
        assert!(matches!(
            RnsBfpEngine::new(cfg, too_small),
            Err(TensorError::InvalidGeometry(_))
        ));
    }
}
