//! Sensitivity sweep over the BFP operating point `(bm, g)` — the
//! laptop-scale analogue of paper Fig. 5: accuracy versus energy per
//! MAC, showing why Mirage picks `bm = 4`, `g = 16`.
//!
//! ```sh
//! cargo run --release --example bfp_sweep
//! ```

use mirage::arch::energy::fig5b_energy_per_mac_pj;
use mirage::bfp::BfpConfig;
use mirage::models::{datasets, small};
use mirage::nn::optim::Sgd;
use mirage::nn::train::{evaluate, train_epoch};
use mirage::nn::Engines;
use mirage::rns::ModuliSet;
use mirage::tensor::engines::BfpEngine;
use rand::SeedableRng;

fn accuracy_for(bm: u32, g: usize) -> f32 {
    let mut rng = rand::rngs::StdRng::seed_from_u64(11);
    let train = datasets::spirals(3, 96, 0.08, 32, 50);
    let test = datasets::spirals(3, 48, 0.08, 32, 60);
    let mut net = small::small_mlp(2, 64, 3, &mut rng);
    let engines = Engines::uniform(BfpEngine::new(
        BfpConfig::new(bm, g).expect("valid sweep point"),
    ));
    let mut opt = Sgd::with_momentum(0.05, 0.9);
    for _ in 0..80 {
        if train_epoch(&mut net, &train, &mut opt, &engines).is_err() {
            return 0.0; // diverged — the bm=3 failure mode
        }
    }
    evaluate(&mut net, &test, &engines).unwrap_or(0.0)
}

fn main() {
    println!("BFP sensitivity sweep (3-class spirals, small MLP)\n");
    println!(
        "{:<6} {:<6} {:>10} {:>12} {:>12}",
        "bm", "g", "acc (%)", "pJ/MAC", "k_min"
    );
    for bm in [3u32, 4, 5] {
        for g in [4usize, 16, 64] {
            let acc = accuracy_for(bm, g) * 100.0;
            let energy = fig5b_energy_per_mac_pj(bm, g, 32)
                .map(|e| format!("{e:.3e}"))
                .unwrap_or_else(|| "n/a".into());
            let k = ModuliSet::min_special_k(bm, g)
                .map(|k| k.to_string())
                .unwrap_or_else(|| "-".into());
            println!("{bm:<6} {g:<6} {acc:>10.1} {energy:>12} {k:>12}");
        }
    }
    println!("\nThe paper selects bm = 4, g = 16: the cheapest configuration");
    println!("that still trains to FP32-comparable accuracy (Fig. 5).");
}
