//! RRNS-protected photonic MVM (paper §VI-E).
//!
//! "Redundant RNS (RRNS) can be used for error detection and correction
//! in RNS-based systems. ... by adding redundant moduli to the original
//! set, we can recover from accuracy loss during RNS-based DNN
//! \[computation\] in the presence of noise. The errors can then be
//! detected and corrected through majority logic decoding."
//!
//! [`ProtectedRnsMmvmu`] runs `n + r` modulus channels (each its own
//! photonic MMVMU) and pushes every output-residue vector through the
//! RRNS decoder. Power and area scale roughly linearly with the moduli
//! count while throughput is unchanged — the trade the paper describes.
//!
//! This module models the *device*: photonic channels, phase noise,
//! per-read power. The same RRNS decode lifecycle runs at GEMM scale in
//! `mirage_tensor::engines::ProtectedRnsBfpEngine`, which serves whole
//! compiled models under live traffic with fault injection
//! (`mirage_tensor::faults`) and per-request correction accounting —
//! see ARCHITECTURE.md § *Fault injection & RRNS-protected serving*.

use crate::config::PhotonicConfig;
use crate::detect::PhaseDetector;
use crate::mmvmu::Mmvmu;
use crate::power;
use crate::{PhotonicsError, Result};
use mirage_rns::rrns::Corrected;
use mirage_rns::{Modulus, RedundantRns};

/// Outcome of one protected output read.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProtectedOutput {
    /// All channels consistent; no correction needed.
    Clean(i128),
    /// One corrupted channel was located and corrected.
    Corrected {
        /// The recovered value.
        value: i128,
        /// The corrected channel index (into base ++ redundant moduli).
        channel: usize,
    },
    /// Too many channels corrupted; decoding failed.
    Uncorrectable,
}

impl ProtectedOutput {
    /// The decoded value, when decoding succeeded.
    pub fn value(&self) -> Option<i128> {
        match *self {
            ProtectedOutput::Clean(v) => Some(v),
            ProtectedOutput::Corrected { value, .. } => Some(value),
            ProtectedOutput::Uncorrectable => None,
        }
    }
}

/// An RNS-MMVMU with redundant modulus channels and majority-logic
/// decoding on every output.
#[derive(Debug, Clone)]
pub struct ProtectedRnsMmvmu {
    rrns: RedundantRns,
    units: Vec<Mmvmu>,
    config: PhotonicConfig,
    g: usize,
    rows: usize,
}

impl ProtectedRnsMmvmu {
    /// Builds a protected unit from base and redundant moduli.
    ///
    /// # Errors
    ///
    /// Propagates moduli-set validation errors (co-primality etc.).
    pub fn new(
        base: &[u64],
        redundant: &[u64],
        rows: usize,
        g: usize,
        config: &PhotonicConfig,
    ) -> Result<Self> {
        let rrns = RedundantRns::new(base, redundant)?;
        let units = rrns
            .full_set()
            .moduli()
            .iter()
            .map(|&m| Mmvmu::new(m, rows, g, config))
            .collect();
        Ok(ProtectedRnsMmvmu {
            rrns,
            units,
            config: *config,
            g,
            rows,
        })
    }

    /// The underlying redundant RNS.
    pub fn rrns(&self) -> &RedundantRns {
        &self.rrns
    }

    /// Relative hardware overhead versus the unprotected design:
    /// moduli-channel count ratio (≈ power and area ratio; §VI-E).
    pub fn overhead_ratio(&self) -> f64 {
        self.rrns.full_set().len() as f64 / self.rrns.base_len() as f64
    }

    /// Total wall-plug laser power including the redundant channels.
    pub fn laser_wall_power_w(&self) -> f64 {
        power::rns_mmvmu_laser_wall_power_w(
            &self.config,
            self.rrns.full_set().moduli(),
            self.g,
            self.rows,
        )
    }

    fn residues_for(&self, modulus: Modulus, values: &[i64]) -> Vec<u64> {
        values
            .iter()
            .map(|&v| modulus.reduce_i128(i128::from(v)))
            .collect()
    }

    /// Noisy protected MVM: each channel reads out through its own
    /// noisy phase detector at `power_scale` of the per-channel design
    /// budget; outputs are RRNS-decoded.
    ///
    /// # Errors
    ///
    /// Length/operand validation and invalid power errors.
    pub fn mvm_protected(
        &self,
        x: &[i64],
        weight_tile: &[Vec<i64>],
        power_scale: f64,
        rng: &mut impl rand::RngExt,
    ) -> Result<Vec<ProtectedOutput>> {
        let moduli = self.rrns.full_set().moduli();
        let mut per_channel: Vec<Vec<u64>> = Vec::with_capacity(moduli.len());
        for (unit, &m) in self.units.iter().zip(moduli) {
            let p_det = power::required_detector_power_w(&self.config, m) * power_scale;
            let detector = PhaseDetector::new(&self.config, p_det)?;
            let xr = self.residues_for(m, x);
            let wr: Vec<Vec<u64>> = weight_tile
                .iter()
                .map(|row| self.residues_for(m, row))
                .collect();
            per_channel.push(unit.mvm_noisy(&xr, &wr, &detector, rng)?);
        }
        let rows = weight_tile.len();
        let mut out = Vec::with_capacity(rows);
        for r in 0..rows {
            let residues: Vec<u64> = per_channel.iter().map(|v| v[r]).collect();
            out.push(match self.rrns.correct(&residues) {
                Ok(Corrected {
                    value,
                    corrected_channel: None,
                }) => ProtectedOutput::Clean(value),
                Ok(Corrected {
                    value,
                    corrected_channel: Some(channel),
                }) => ProtectedOutput::Corrected { value, channel },
                Err(mirage_rns::RnsError::Uncorrectable) => ProtectedOutput::Uncorrectable,
                Err(e) => return Err(PhotonicsError::Rns(e)),
            });
        }
        Ok(out)
    }

    /// Reference (noise-free) outputs for comparison.
    ///
    /// # Errors
    ///
    /// Length/operand validation.
    pub fn mvm_ideal(&self, x: &[i64], weight_tile: &[Vec<i64>]) -> Result<Vec<i128>> {
        weight_tile
            .iter()
            .map(|row| {
                let v: i128 = row
                    .iter()
                    .zip(x)
                    .map(|(&w, &xv)| i128::from(w) * i128::from(xv))
                    .sum();
                Ok(v)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn unit() -> ProtectedRnsMmvmu {
        ProtectedRnsMmvmu::new(&[31, 32, 33], &[37, 41], 8, 16, &PhotonicConfig::default())
            .expect("valid moduli")
    }

    fn operands() -> (Vec<i64>, Vec<Vec<i64>>) {
        let x: Vec<i64> = (0..16).map(|i| ((i * 5) % 31) - 15).collect();
        let w: Vec<Vec<i64>> = (0..8)
            .map(|r| {
                (0..16)
                    .map(|j| ((r * 7 + j * 3) % 31) as i64 - 15)
                    .collect()
            })
            .collect();
        (x, w)
    }

    #[test]
    fn clean_at_design_power() {
        let u = unit();
        let (x, w) = operands();
        let ideal = u.mvm_ideal(&x, &w).unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let out = u.mvm_protected(&x, &w, 1.0, &mut rng).unwrap();
        for (o, &want) in out.iter().zip(&ideal) {
            assert_eq!(o.value(), Some(want));
        }
    }

    #[test]
    fn correction_beats_unprotected_at_starved_power() {
        // At a power level where single-channel read errors are common
        // but double errors rare, RRNS recovers most outputs.
        let u = unit();
        let (x, w) = operands();
        let ideal = u.mvm_ideal(&x, &w).unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        let scale = 0.5;
        let trials = 60;
        let mut corrected = 0usize;
        let mut wrong_after = 0usize;
        for _ in 0..trials {
            let out = u.mvm_protected(&x, &w, scale, &mut rng).unwrap();
            for (o, &want) in out.iter().zip(&ideal) {
                match o {
                    ProtectedOutput::Corrected { value, .. } => {
                        corrected += 1;
                        if *value != want {
                            wrong_after += 1;
                        }
                    }
                    ProtectedOutput::Clean(v) => {
                        if *v != want {
                            wrong_after += 1;
                        }
                    }
                    ProtectedOutput::Uncorrectable => wrong_after += 1,
                }
            }
        }
        assert!(corrected > 0, "expected some corrections at {scale}x power");
        let total = trials * ideal.len();
        // Decoded error rate must be far below the raw correction rate.
        assert!(
            (wrong_after as f64) < 0.5 * corrected as f64,
            "wrong_after = {wrong_after}, corrected = {corrected} of {total}"
        );
    }

    #[test]
    fn overhead_is_reported() {
        let u = unit();
        assert!((u.overhead_ratio() - 5.0 / 3.0).abs() < 1e-12);
        assert!(u.laser_wall_power_w() > 0.0);
    }

    #[test]
    fn rejects_non_coprime() {
        assert!(
            ProtectedRnsMmvmu::new(&[31, 32, 33], &[62], 4, 16, &PhotonicConfig::default())
                .is_err()
        );
    }
}
