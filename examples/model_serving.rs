//! Compiled model serving: freeze a network once, serve it from many
//! threads with zero per-request weight quantization.
//!
//! ```sh
//! cargo run --example model_serving
//! ```

use mirage::models::serving::transformer_ff_proxy;
use mirage::tensor::{ActivationScratch, Tensor};
use mirage::Mirage;
use rand::SeedableRng;
use std::time::Instant;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mirage = Mirage::paper_default();
    let mut rng = rand::rngs::StdRng::seed_from_u64(7);

    // A runnable stand-in for the Transformer zoo workload's FF stack
    // (scaled to keep the example quick).
    let mut net = transformer_ff_proxy(256, 2, 10, &mut rng);
    let engines = mirage.training_engines();
    println!("model: {net:?}");

    // Freeze it: every GEMM weight is transposed + quantized exactly once.
    let t0 = Instant::now();
    let compiled = mirage.compile(&net)?;
    println!(
        "compiled {} steps in {:.2} ms: {:?}",
        compiled.len(),
        t0.elapsed().as_secs_f64() * 1e3,
        compiled.step_names()
    );

    // Bit-identity: compilation is a caching transformation, never a
    // numerical one.
    let x = Tensor::randn(&[8, 256], 1.0, &mut rng);
    let eager = net.forward(&x, &engines)?;
    assert_eq!(compiled.run(&x)?.data(), eager.data());
    println!("compiled output is bit-identical to the eager forward pass");

    // Single-thread serving loop: eager vs compiled.
    let reps = 20;
    let t0 = Instant::now();
    for _ in 0..reps {
        net.forward(&x, &engines)?;
    }
    let eager_ms = t0.elapsed().as_secs_f64() * 1e3 / reps as f64;
    let mut scratch = ActivationScratch::new();
    let t0 = Instant::now();
    for _ in 0..reps {
        compiled.run_with(&x, &mut scratch)?;
    }
    let compiled_ms = t0.elapsed().as_secs_f64() * 1e3 / reps as f64;
    println!(
        "eager {eager_ms:.2} ms/request vs compiled {compiled_ms:.2} ms/request \
         ({:.1}x)",
        eager_ms / compiled_ms
    );

    // The plan is Sync and lock-free on the hot path: threads share it.
    let served: usize = std::thread::scope(|s| {
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let (compiled, x, eager) = (&compiled, &x, &eager);
                s.spawn(move || {
                    let mut scratch = ActivationScratch::new();
                    for _ in 0..reps {
                        let y = compiled.run_with(x, &mut scratch).expect("serves");
                        assert_eq!(y.data(), eager.data());
                    }
                    reps
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).sum()
    });
    println!("{served} requests served concurrently from one compiled model");

    // Or keep models in a session, keyed by name.
    let session = mirage.model_session();
    session.load("transformer-ff", &net)?;
    let y = session.run("transformer-ff", &x)?;
    assert_eq!(y.data(), eager.data());
    println!("ModelSession serves {:?} bit-identically", "transformer-ff");
    Ok(())
}
