//! Packed vs legacy kernel microbenchmarks — the perf-trajectory bench
//! for the flat quantized GEMM layer.
//!
//! Measures, on one thread (this container has 1 CPU; the acceptance
//! numbers are single-thread by design):
//!
//! - **quantize**: the PR 3 row quantizer (one `Vec<i32>` + one
//!   `sanitized` staging `Vec<f32>` per group) vs
//!   `PackedBfpMatrix::quantize_rows_into` (flat buffers, reused
//!   scratch — with a pointer-stability spot-check proving the
//!   steady-state path performs no heap allocation);
//! - **group-dot**: chained `BfpBlock::dot` + `exp2` recombination vs
//!   `PackedBfpMatrix::dot_rows` (slice integer dot + bit-twiddled
//!   `pow2`);
//! - **BFP GEMM** and **RNS-BFP GEMM** on the 64×256×256 serving shape:
//!   the packed engines vs faithful reimplementations of the legacy
//!   per-group-heap-object kernels (kept here as the oracle) — pinned
//!   to the scalar kernels (`SimdPolicy::Off`) so the row keeps
//!   measuring the PR 4 layout gain;
//! - **SIMD GEMM rows**: the explicit SIMD kernels (AVX2/SSE2 dispatch)
//!   vs the scalar packed kernels on the same shape, asserted
//!   bit-identical element-exact before timing. The `simd` column
//!   records the tier each row ran at.
//!
//! Every comparison asserts **bit-identity** before timing anything, so
//! running this bench in `--test` (smoke) mode is a correctness check.
//! Full runs write `BENCH_kernels.json` for the perf trajectory.
//! `MIRAGE_SIMD=off` (or `sse2`) caps the SIMD rows' tier, which CI
//! uses to smoke the scalar fallback.

use mirage_bench::{print_table, write_summary, JsonField};
use mirage_bfp::{simd, BfpBlock, BfpConfig, PackedBfpMatrix, SimdPolicy};
use mirage_rns::convert::{CrtConverter, ReverseConverter};
use mirage_rns::residue;
use mirage_tensor::engines::{BfpEngine, RnsBfpEngine};
use mirage_tensor::{GemmEngine, Tensor};
use rand::SeedableRng;
use std::hint::black_box;
use std::time::{Duration, Instant};

/// The serving shape the acceptance criteria are measured on.
const M: usize = 64;
const K: usize = 256;
const N: usize = 256;

/// Best-of-`reps` wall clock for one invocation of `f`.
fn best_of<F: FnMut()>(reps: usize, mut f: F) -> Duration {
    let mut best = Duration::MAX;
    for _ in 0..reps {
        let t0 = Instant::now();
        f();
        best = best.min(t0.elapsed());
    }
    best
}

fn ms(d: Duration) -> f64 {
    d.as_secs_f64() * 1e3
}

/// PR 3's `BfpBlock::quantize`, replicated verbatim: the unconditional
/// `sanitized` staging copy per group (this PR's library version takes
/// an allocation-free fast path on all-finite input, so measuring
/// through it would flatter the legacy path).
fn pr3_quantize(values: &[f32], config: BfpConfig) -> BfpBlock {
    let sanitized: Vec<f32> = values
        .iter()
        .map(|&v| {
            if v.is_nan() {
                0.0
            } else if v.is_infinite() {
                f32::MAX.copysign(v)
            } else {
                v
            }
        })
        .collect();
    BfpBlock::quantize(&sanitized, config)
}

/// PR 3's row quantizer: `rows × ceil(k/g)` heap blocks.
fn pr3_quantize_rows(t: &Tensor, config: BfpConfig) -> Vec<Vec<BfpBlock>> {
    let cols = t.shape()[1];
    let g = config.group_size();
    (0..t.shape()[0])
        .map(|r| {
            let row = &t.data()[r * cols..(r + 1) * cols];
            row.chunks(g)
                .map(|chunk| pr3_quantize(chunk, config))
                .collect()
        })
        .collect()
}

fn pr3_quantize_cols(b: &Tensor, config: BfpConfig) -> Vec<Vec<BfpBlock>> {
    pr3_quantize_rows(&b.transpose2d().unwrap(), config)
}

/// The legacy block-path BFP GEMM (the PR 3 implementation): one
/// `BfpBlock` heap object per group, `Result`-checked dots, `exp2`
/// recombination. The oracle for the packed kernels.
fn legacy_bfp_gemm(a: &Tensor, b: &Tensor, config: BfpConfig) -> Tensor {
    let (m, n) = (a.shape()[0], b.shape()[1]);
    let a_rows = pr3_quantize_rows(a, config);
    let b_cols = pr3_quantize_cols(b, config);
    let mut out = vec![0.0f32; m * n];
    for (i, arow) in a_rows.iter().enumerate() {
        for (j, bcol) in b_cols.iter().enumerate() {
            let mut acc = 0.0f32;
            for (ga, gb) in arow.iter().zip(bcol) {
                // The PR 3 recombination, `exp2` call included (the
                // library's `to_f32` has since switched to the
                // bit-identical `pow2` helper).
                let d = ga.dot(gb).unwrap();
                acc += (d.integer as f64 * (d.scale_exp as f64).exp2()) as f32;
            }
            out[i * n + j] = acc;
        }
    }
    Tensor::from_vec(out, &[m, n]).unwrap()
}

/// The legacy per-group RNS GEMM (pre-packed implementation): per-group
/// `Vec<Vec<u64>>` residues, validated CRT reverse conversion with a
/// per-group scratch vector, `exp2` recombination.
fn legacy_rns_gemm(a: &Tensor, b: &Tensor, engine: &RnsBfpEngine) -> Tensor {
    let (m, n) = (a.shape()[0], b.shape()[1]);
    let moduli = engine.moduli().moduli();
    let converter = CrtConverter::new(engine.moduli());
    type Converted = Vec<Vec<(i32, Vec<Vec<u64>>)>>;
    let convert = |blocks: Vec<Vec<BfpBlock>>| -> Converted {
        blocks
            .iter()
            .map(|groups| {
                groups
                    .iter()
                    .map(|block| {
                        let wide = block.mantissas_i64();
                        (
                            block.scale_exp(),
                            moduli
                                .iter()
                                .map(|&md| residue::reduce_signed(&wide, md))
                                .collect(),
                        )
                    })
                    .collect()
            })
            .collect()
    };
    let a_rows = convert(pr3_quantize_rows(a, engine.config()));
    let b_cols = convert(pr3_quantize_cols(b, engine.config()));
    let mut out = vec![0.0f32; m * n];
    for (i, arow) in a_rows.iter().enumerate() {
        for (j, bcol) in b_cols.iter().enumerate() {
            let mut acc = 0.0f32;
            for ((ea, ga), (eb, gb)) in arow.iter().zip(bcol) {
                let residues: Vec<u64> = moduli
                    .iter()
                    .enumerate()
                    .map(|(c, &md)| residue::dot_product(&ga[c], &gb[c], md).unwrap())
                    .collect();
                let integer = converter.to_signed(&residues).unwrap() as f64;
                acc += (integer * ((ea + eb) as f64).exp2()) as f32;
            }
            out[i * n + j] = acc;
        }
    }
    Tensor::from_vec(out, &[m, n]).unwrap()
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--test");
    let reps = |n: usize| if smoke { 1 } else { n };
    let config = BfpConfig::mirage_default();
    let mut rng = rand::rngs::StdRng::seed_from_u64(4096);
    let a = Tensor::randn(&[M, K], 1.0, &mut rng);
    let b = Tensor::randn(&[K, N], 1.0, &mut rng);

    let mut rows = Vec::new();
    let mut json = Vec::new();
    let mut record =
        |kernel: &str, workload: String, simd_label: &str, legacy: Duration, packed: Duration| {
            let speedup = legacy.as_secs_f64() / packed.as_secs_f64();
            rows.push(vec![
                kernel.to_string(),
                workload.clone(),
                format!("{:.3}", ms(legacy)),
                format!("{:.3}", ms(packed)),
                format!("{speedup:.2}x"),
                simd_label.to_string(),
                "yes".into(),
            ]);
            json.push(vec![
                JsonField::Str("kernel", kernel.to_string()),
                JsonField::Str("workload", workload),
                JsonField::Num("legacy_ms", ms(legacy)),
                JsonField::Num("packed_ms", ms(packed)),
                JsonField::Num("speedup", speedup),
                JsonField::Str("simd", simd_label.to_string()),
                JsonField::Num("threads", 1.0),
            ]);
        };

    // ── Quantize: legacy Vec<Vec<BfpBlock>> vs packed flat buffers ───
    {
        // Bit-identity first (group by group), then the no-alloc
        // spot-check: at steady state the packed scratch never moves.
        let legacy = pr3_quantize_rows(&a, config);
        let mut scratch = PackedBfpMatrix::empty(config);
        scratch.quantize_rows_into(a.data(), M, K).unwrap();
        for (r, groups) in legacy.iter().enumerate() {
            for (gi, block) in groups.iter().enumerate() {
                assert_eq!(
                    &scratch.group_mantissas(r, gi)[..block.len()],
                    block.mantissas(),
                    "packed quantizer diverged at ({r}, {gi})"
                );
                assert_eq!(scratch.group_scale_exp(r, gi), block.scale_exp());
            }
        }
        let mantissa_ptr = scratch.mantissas().as_ptr();
        scratch.quantize_rows_into(a.data(), M, K).unwrap();
        assert_eq!(
            scratch.mantissas().as_ptr(),
            mantissa_ptr,
            "steady-state packed quantization reallocated its scratch"
        );
        let t_legacy = best_of(reps(20), || {
            black_box(pr3_quantize_rows(black_box(&a), config));
        });
        let t_packed = best_of(reps(20), || {
            scratch
                .quantize_rows_into(black_box(a.data()), M, K)
                .unwrap();
            black_box(scratch.mantissas().len());
        });
        record(
            "quantize",
            format!("{M}x{K} rows"),
            "off",
            t_legacy,
            t_packed,
        );
    }

    // ── Group-dot: BfpBlock::dot chains vs flat slice dots ───────────
    {
        let xa = BfpEngine::quantize_rows(&a, config);
        let xb = BfpEngine::quantize_cols(&b, config).expect("rank-2");
        let pa = BfpEngine::pack_rows(&a, config);
        let pb = BfpEngine::pack_cols(&b, config).unwrap();
        // One full row×col sweep of group dots per rep.
        let t_legacy = best_of(reps(5), || {
            let mut acc = 0.0f32;
            for arow in &xa {
                for bcol in &xb {
                    for (ga, gb) in arow.iter().zip(bcol) {
                        let d = ga.dot(gb).unwrap();
                        acc += (d.integer as f64 * (d.scale_exp as f64).exp2()) as f32;
                    }
                }
            }
            black_box(acc);
        });
        let t_packed = best_of(reps(5), || {
            let mut acc = 0.0f32;
            for i in 0..M {
                for j in 0..N {
                    acc += pa.dot_rows(i, &pb, j);
                }
            }
            black_box(acc);
        });
        record(
            "group-dot sweep",
            format!("{M}x{N} dots of k={K}"),
            "off",
            t_legacy,
            t_packed,
        );
    }

    // ── BFP GEMM: packed engine vs legacy block path ─────────────────
    // Pinned to the scalar kernel so this row keeps measuring the PR 4
    // layout gain; the SIMD gain gets its own row below.
    {
        let engine = BfpEngine::new(config).with_simd_policy(SimdPolicy::Off);
        let packed_out = engine.gemm(&a, &b).unwrap();
        let legacy_out = legacy_bfp_gemm(&a, &b, config);
        assert_eq!(
            packed_out.data(),
            legacy_out.data(),
            "packed BFP GEMM diverged from the legacy block path"
        );
        let t_legacy = best_of(reps(5), || {
            black_box(legacy_bfp_gemm(black_box(&a), black_box(&b), config));
        });
        let t_packed = best_of(reps(5), || {
            black_box(engine.gemm(black_box(&a), black_box(&b)).unwrap());
        });
        record(
            "bfp gemm",
            format!("{M}x{K}x{N}"),
            "off",
            t_legacy,
            t_packed,
        );
    }

    // ── RNS-BFP GEMM: packed residue planes vs legacy groups ─────────
    {
        let engine = RnsBfpEngine::with_min_special_set(config)
            .unwrap()
            .with_simd_policy(SimdPolicy::Off);
        let packed_out = engine.gemm(&a, &b).unwrap();
        let legacy_out = legacy_rns_gemm(&a, &b, &engine);
        assert_eq!(
            packed_out.data(),
            legacy_out.data(),
            "packed RNS-BFP GEMM diverged from the legacy group path"
        );
        let t_legacy = best_of(reps(3), || {
            black_box(legacy_rns_gemm(black_box(&a), black_box(&b), &engine));
        });
        let t_packed = best_of(reps(3), || {
            black_box(engine.gemm(black_box(&a), black_box(&b)).unwrap());
        });
        record(
            "rns-bfp gemm",
            format!("{M}x{K}x{N}"),
            "off",
            t_legacy,
            t_packed,
        );
    }

    // ── SIMD GEMM: explicit-SIMD kernels vs scalar packed kernels ────
    // The "legacy" side here is this PR's baseline: the PR 4 scalar
    // packed kernel the rows above just measured. Bit-identity between
    // the tiers is the tentpole contract and is asserted element-exact
    // before any timing.
    let tier = simd::resolve_tier(SimdPolicy::Auto).label();
    {
        let scalar = BfpEngine::new(config).with_simd_policy(SimdPolicy::Off);
        let vector = BfpEngine::new(config); // SimdPolicy::Auto
        let prepared_scalar = scalar.prepare(&b).unwrap();
        let prepared_vector = vector.prepare(&b).unwrap();
        let out_scalar = scalar.gemm_prepared(&a, &prepared_scalar).unwrap();
        let out_vector = vector.gemm_prepared(&a, &prepared_vector).unwrap();
        let scalar_bits: Vec<u32> = out_scalar.data().iter().map(|v| v.to_bits()).collect();
        let vector_bits: Vec<u32> = out_vector.data().iter().map(|v| v.to_bits()).collect();
        assert_eq!(
            scalar_bits, vector_bits,
            "SIMD BFP GEMM diverged from the scalar packed kernel"
        );
        let t_scalar = best_of(reps(5), || {
            black_box(
                scalar
                    .gemm_prepared(black_box(&a), &prepared_scalar)
                    .unwrap(),
            );
        });
        let t_vector = best_of(reps(5), || {
            black_box(
                vector
                    .gemm_prepared(black_box(&a), &prepared_vector)
                    .unwrap(),
            );
        });
        record(
            "bfp gemm (simd)",
            format!("{M}x{K}x{N}"),
            tier,
            t_scalar,
            t_vector,
        );
    }
    {
        let scalar = RnsBfpEngine::with_min_special_set(config)
            .unwrap()
            .with_simd_policy(SimdPolicy::Off);
        let vector = RnsBfpEngine::with_min_special_set(config).unwrap();
        let prepared_scalar = scalar.prepare(&b).unwrap();
        let prepared_vector = vector.prepare(&b).unwrap();
        let out_scalar = scalar.gemm_prepared(&a, &prepared_scalar).unwrap();
        let out_vector = vector.gemm_prepared(&a, &prepared_vector).unwrap();
        let scalar_bits: Vec<u32> = out_scalar.data().iter().map(|v| v.to_bits()).collect();
        let vector_bits: Vec<u32> = out_vector.data().iter().map(|v| v.to_bits()).collect();
        assert_eq!(
            scalar_bits, vector_bits,
            "SIMD RNS-BFP GEMM diverged from the scalar packed kernel"
        );
        let t_scalar = best_of(reps(3), || {
            black_box(
                scalar
                    .gemm_prepared(black_box(&a), &prepared_scalar)
                    .unwrap(),
            );
        });
        let t_vector = best_of(reps(3), || {
            black_box(
                vector
                    .gemm_prepared(black_box(&a), &prepared_vector)
                    .unwrap(),
            );
        });
        record(
            "rns-bfp gemm (simd)",
            format!("{M}x{K}x{N}"),
            tier,
            t_scalar,
            t_vector,
        );
    }

    print_table(
        "Packed vs legacy kernels — single thread",
        &[
            "kernel",
            "workload",
            "baseline (ms)",
            "new (ms)",
            "speedup",
            "simd",
            "bit-identical",
        ],
        &rows,
    );
    println!("\nAll packed results are asserted bit-identical to the legacy");
    println!("block-path kernels before timing, and the SIMD rows are asserted");
    println!("bit-identical to the scalar packed kernels. Acceptance floors");
    println!("(single thread, 64x256x256): >= 3x packed-vs-legacy for BFP,");
    println!(">= 2x for RNS-BFP, and >= 1.5x SIMD-vs-scalar on both.");

    if smoke {
        println!("\n--test smoke mode: timings above are single-shot; JSON skipped.");
        return;
    }
    write_summary(
        concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_kernels.json"),
        "kernel_microbench",
        &json,
    );
}
