//! Fixture: lexer edge cases. This file is saturated with banned
//! tokens — but only inside comments, doc comments, raw strings, byte
//! strings and char literals — so it must produce ZERO findings even
//! with every rule armed at once (int_kernel region spanning the whole
//! file, no_alloc markers, and serving-module classification).
//! Prose decoys: f64, 0.5, .sqrt(), x.unwrap(), panic!("doc").
//! Never compiled — consumed via `include_str!` by `lexer_edges.rs`.

// mirage-lint: region(int_kernel)

/* Nested /* block /* comments */ mentioning f64, 0.5 */ and .sqrt( */

/// Doc decoys: `x.unwrap()`, `panic!("no")`, `vec![0.0f64]`, `0.5f32`.
pub fn raw_strings<'a>(x: &'a str) -> (&'a str, char, u8) {
    let s = r#"f64 0.5 .unwrap() panic!("p") Vec::new() format!("q")"#;
    let nested = r##"outer r#"inner f32"# still the same string"##;
    let bytes = b"f64 in a byte string 0.5";
    let byte = b'f';
    let c = '\u{1F600}';
    let escaped = '\'';
    let lifetime_not_char: &'a str = x;
    let _ = (s, nested, bytes, escaped);
    (lifetime_not_char, c, byte)
}

// A string literal is NOT a comment: this directive must be ignored.
pub fn directive_in_string() -> &'static str {
    "// mirage-lint: end_region(int_kernel) -- not a real directive"
}

// mirage-lint: no_alloc
/// Ranges and int method calls must not read as float literals, and
/// `0.5e1`-shaped decoys live only in this doc line.
pub fn int_edges(n: usize) -> usize {
    let mut total = 0usize;
    for i in 0..n {
        total += i.max(1);
    }
    let pair = (1, 2.min(3));
    total + pair.1
}

// mirage-lint: end_region(int_kernel)
