//! Engine selection for forward and backward GEMMs.

use mirage_tensor::GemmEngine;
use std::sync::Arc;

/// The GEMM engines used by a training run.
///
/// DNN training performs three GEMM kinds per layer (paper §II-A): the
/// forward product (Eq. 1), the input-gradient product (Eq. 2) and the
/// weight-gradient product (Eq. 3). Formats like HFP8 use different
/// encodings for forward and backward; Mirage uses the same BFP config
/// everywhere. `Engines` lets callers choose per-direction engines.
#[derive(Clone)]
pub struct Engines {
    forward: Arc<dyn GemmEngine>,
    backward: Arc<dyn GemmEngine>,
}

impl Engines {
    /// Uses the same engine for forward and backward GEMMs.
    pub fn uniform(engine: impl GemmEngine + 'static) -> Self {
        let e: Arc<dyn GemmEngine> = Arc::new(engine);
        Engines {
            forward: e.clone(),
            backward: e,
        }
    }

    /// Uses distinct forward/backward engines (e.g. HFP8's 1-4-3 forward
    /// and 1-5-2 backward formats).
    pub fn split(forward: impl GemmEngine + 'static, backward: impl GemmEngine + 'static) -> Self {
        Engines {
            forward: Arc::new(forward),
            backward: Arc::new(backward),
        }
    }

    /// The forward-pass engine.
    pub fn forward(&self) -> &dyn GemmEngine {
        self.forward.as_ref()
    }

    /// The backward-pass engine.
    pub fn backward(&self) -> &dyn GemmEngine {
        self.backward.as_ref()
    }
}

impl std::fmt::Debug for Engines {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Engines")
            .field("forward", &self.forward.name())
            .field("backward", &self.backward.name())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mirage_tensor::engines::{Bf16Engine, ExactEngine};

    #[test]
    fn uniform_shares_engine() {
        let e = Engines::uniform(ExactEngine);
        assert_eq!(e.forward().name(), "fp32");
        assert_eq!(e.backward().name(), "fp32");
    }

    #[test]
    fn split_engines() {
        let e = Engines::split(ExactEngine, Bf16Engine);
        assert_eq!(e.forward().name(), "fp32");
        assert_eq!(e.backward().name(), "bfloat16");
    }

    #[test]
    fn debug_shows_names() {
        let e = Engines::uniform(ExactEngine);
        assert!(format!("{e:?}").contains("fp32"));
    }
}
