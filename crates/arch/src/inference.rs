//! Inference-accelerator comparison (paper Table III).

use crate::breakdown::{area_breakdown, power_breakdown};
use crate::config::MirageConfig;
use crate::energy::DigitalEnergy;
use crate::latency::mirage_inference_latency_s;
use crate::workload::Workload;

/// Published accelerator numbers for one model (IPS, IPS/W, IPS/mm²).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct InferenceEntry {
    /// Inferences per second.
    pub ips: f64,
    /// Inferences per second per watt.
    pub ips_per_w: f64,
    /// Inferences per second per mm² (`None` when unpublished).
    pub ips_per_mm2: Option<f64>,
}

/// A baseline accelerator row of Table III.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct InferenceBaseline {
    /// Accelerator name.
    pub name: &'static str,
    /// ResNet50 numbers, when published.
    pub resnet50: Option<InferenceEntry>,
    /// AlexNet numbers, when published.
    pub alexnet: Option<InferenceEntry>,
}

/// Literature rows of Table III (all values as printed in the paper).
pub const TABLE3_BASELINES: [InferenceBaseline; 9] = [
    InferenceBaseline {
        name: "ADEPT",
        resnet50: Some(InferenceEntry {
            ips: 35_698.0,
            ips_per_w: 1_587.99,
            ips_per_mm2: Some(50.57),
        }),
        alexnet: Some(InferenceEntry {
            ips: 217_201.0,
            ips_per_w: 7_476.78,
            ips_per_mm2: Some(307.64),
        }),
    },
    InferenceBaseline {
        name: "Albireo-C",
        resnet50: None,
        alexnet: Some(InferenceEntry {
            ips: 7_692.0,
            ips_per_w: 344.17,
            ips_per_mm2: Some(61.46),
        }),
    },
    InferenceBaseline {
        name: "DNNARA",
        resnet50: Some(InferenceEntry {
            ips: 9_345.0,
            ips_per_w: 100.0,
            ips_per_mm2: Some(42.05),
        }),
        alexnet: None,
    },
    InferenceBaseline {
        name: "HolyLight",
        resnet50: None,
        alexnet: Some(InferenceEntry {
            ips: 50_000.0,
            ips_per_w: 900.0,
            ips_per_mm2: Some(2_226.11),
        }),
    },
    InferenceBaseline {
        name: "Eyeriss",
        resnet50: None,
        alexnet: Some(InferenceEntry {
            ips: 35.0,
            ips_per_w: 124.80,
            ips_per_mm2: Some(2.85),
        }),
    },
    InferenceBaseline {
        name: "Eyeriss v2",
        resnet50: None,
        alexnet: Some(InferenceEntry {
            ips: 102.0,
            ips_per_w: 174.80,
            ips_per_mm2: None,
        }),
    },
    InferenceBaseline {
        name: "TPU v3",
        resnet50: Some(InferenceEntry {
            ips: 32_716.0,
            ips_per_w: 18.18,
            ips_per_mm2: Some(18.00),
        }),
        alexnet: None,
    },
    InferenceBaseline {
        name: "UNPU",
        resnet50: None,
        alexnet: Some(InferenceEntry {
            ips: 346.0,
            ips_per_w: 1_097.50,
            ips_per_mm2: Some(21.62),
        }),
    },
    InferenceBaseline {
        name: "Res-DNN",
        resnet50: None,
        alexnet: Some(InferenceEntry {
            ips: 386.11,
            ips_per_w: 427.78,
            ips_per_mm2: None,
        }),
    },
];

/// Computes Mirage's Table III row for a (batch-1) inference workload:
/// IPS from the latency model, IPS/W from the full peak power, IPS/mm²
/// from the 3D-stacked footprint.
pub fn mirage_inference_entry(cfg: &MirageConfig, workload: &Workload) -> InferenceEntry {
    let latency = mirage_inference_latency_s(cfg, workload);
    let batch = workload.batch.max(1) as f64;
    let ips = batch / latency;
    let power = power_breakdown(cfg, &DigitalEnergy::default()).total_w();
    let footprint = area_breakdown(cfg).footprint_mm2();
    InferenceEntry {
        ips,
        ips_per_w: ips / power,
        ips_per_mm2: Some(ips / footprint),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::WorkloadLayer;

    /// A ResNet50-scale stand-in (exact zoo lives in mirage-models).
    fn resnet50_like() -> Workload {
        Workload::new(
            "resnet50-like",
            1,
            vec![
                WorkloadLayer::new("conv1", 64, 147, 12544),
                WorkloadLayer::new("stage2", 256, 576, 3136),
                WorkloadLayer::new("stage3", 512, 1152, 784),
                WorkloadLayer::new("stage4", 1024, 2304, 196),
                WorkloadLayer::new("stage5", 2048, 4608, 49),
                WorkloadLayer::new("fc", 1000, 2048, 1),
            ],
        )
    }

    #[test]
    fn mirage_ips_in_plausible_range() {
        // Paper Table III: Mirage ResNet50 ~10,474 IPS. Our stand-in
        // workload is lighter than the full ResNet50, so allow a wide
        // band around that order of magnitude.
        let e = mirage_inference_entry(&MirageConfig::default(), &resnet50_like());
        assert!(e.ips > 1_000.0 && e.ips < 1_000_000.0, "ips = {}", e.ips);
    }

    #[test]
    fn efficiency_metrics_consistent() {
        let cfg = MirageConfig::default();
        let e = mirage_inference_entry(&cfg, &resnet50_like());
        let power = power_breakdown(&cfg, &DigitalEnergy::default()).total_w();
        assert!((e.ips_per_w - e.ips / power).abs() < 1e-6);
        assert!(e.ips_per_mm2.unwrap() > 0.0);
    }

    #[test]
    fn baselines_table_is_complete() {
        assert_eq!(TABLE3_BASELINES.len(), 9);
        let adept = &TABLE3_BASELINES[0];
        assert_eq!(adept.name, "ADEPT");
        assert!(adept.resnet50.unwrap().ips > 30_000.0);
        // Eyeriss v2 has no area figure, as in the paper.
        let ev2 = TABLE3_BASELINES
            .iter()
            .find(|b| b.name == "Eyeriss v2")
            .unwrap();
        assert!(ev2.alexnet.unwrap().ips_per_mm2.is_none());
    }
}
