//! Mirage accelerator configuration (paper §IV-C, §VI-A).

use mirage_photonics::PhotonicConfig;
use mirage_rns::ModuliSet;

/// Full Mirage accelerator configuration.
///
/// Defaults follow the paper's chosen design point: 8 RNS-MMVMUs, each
/// with one 16×32 MMVMU per modulus of `{31, 32, 33}` (`k = 5`), a
/// 10 GHz photonic clock, 1 GHz digital clock with 10-way interleaving,
/// three 8 MB SRAM arrays, and 5 ns phase-shifter reprogramming.
#[derive(Debug, Clone)]
pub struct MirageConfig {
    /// Number of RNS-MMVMUs (paper: 8).
    pub num_units: usize,
    /// MDPUs per MMVMU — the vertical array size (paper: 32).
    pub rows: usize,
    /// MMUs per MDPU — the horizontal array size and BFP group size
    /// (paper: g = 16).
    pub g: usize,
    /// The RNS moduli set (paper: special set with k = 5).
    pub moduli: ModuliSet,
    /// BFP mantissa bits (paper: 4).
    pub bm: u32,
    /// Photonic device configuration.
    pub photonics: PhotonicConfig,
    /// Digital clock in Hz (paper: 1 GHz, 10-way interleaved).
    pub digital_clock_hz: f64,
    /// Interleaving factor matching digital to photonic throughput
    /// (paper: 10).
    pub interleave: usize,
    /// SRAM bytes per array; three arrays: activations, weights,
    /// gradients (paper: 8 MB each).
    pub sram_bytes_per_array: usize,
    /// Number of SRAM arrays (paper: 3).
    pub sram_arrays: usize,
}

impl Default for MirageConfig {
    fn default() -> Self {
        MirageConfig {
            num_units: 8,
            rows: 32,
            g: 16,
            moduli: ModuliSet::special_set(5).expect("k = 5 is valid"),
            bm: 4,
            photonics: PhotonicConfig::default(),
            digital_clock_hz: 1e9,
            interleave: 10,
            sram_bytes_per_array: 8 << 20,
            sram_arrays: 3,
        }
    }
}

impl MirageConfig {
    /// Photonic MVM cycle time in seconds (paper: 0.1 ns).
    pub fn cycle_s(&self) -> f64 {
        1.0 / self.photonics.clock_hz
    }

    /// Phase-shifter reprogramming stall per tile in seconds
    /// (paper: 5 ns).
    pub fn reprogram_s(&self) -> f64 {
        self.photonics.phase_shifter.reprogram_time_s
    }

    /// Real (binary) MACs completed per photonic cycle across the whole
    /// accelerator: `units × rows × g`.
    ///
    /// The `n` moduli channels jointly produce one binary MAC, so the
    /// moduli count does not multiply throughput.
    pub fn macs_per_cycle(&self) -> usize {
        self.num_units * self.rows * self.g
    }

    /// Peak MAC throughput in MAC/s.
    pub fn peak_macs_per_s(&self) -> f64 {
        self.macs_per_cycle() as f64 * self.photonics.clock_hz
    }

    /// Returns a copy with a different array geometry (for sensitivity
    /// sweeps, Fig. 6).
    pub fn with_geometry(mut self, num_units: usize, rows: usize, g: usize) -> Self {
        self.num_units = num_units;
        self.rows = rows;
        self.g = g;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_paper_design_point() {
        let c = MirageConfig::default();
        assert_eq!(c.num_units, 8);
        assert_eq!(c.rows, 32);
        assert_eq!(c.g, 16);
        assert_eq!(c.moduli.special_k(), Some(5));
        assert_eq!(c.macs_per_cycle(), 8 * 32 * 16);
        assert!((c.cycle_s() - 0.1e-9).abs() < 1e-15);
        assert!((c.reprogram_s() - 5e-9).abs() < 1e-15);
    }

    #[test]
    fn peak_throughput() {
        let c = MirageConfig::default();
        // 4096 MACs x 10 GHz = 40.96 TMAC/s.
        assert!((c.peak_macs_per_s() - 40.96e12).abs() / 40.96e12 < 1e-12);
    }

    #[test]
    fn geometry_override() {
        let c = MirageConfig::default().with_geometry(4, 64, 32);
        assert_eq!(c.macs_per_cycle(), 4 * 64 * 32);
    }
}
