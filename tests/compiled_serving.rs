//! Compiled-model serving: the bit-identity grid and concurrency
//! contract.
//!
//! `CompiledNetwork::run{,_batch}` must equal the eager
//! `Sequential::forward` **to the last bit** across every arithmetic
//! (exact / BFP / RNS-BFP / photonic), serial × parallel tile
//! configurations, batch sizes {1, 7, 128}, and from any number of
//! concurrent threads sharing one compiled model — compilation is a
//! caching transformation, never a numerical one. A call-counting
//! engine additionally proves the cache claim itself: after compile,
//! serving runs zero weight-side quantization.

use mirage::models::small::{small_cnn, small_mlp, tiny_attention_classifier};
use mirage::nn::{Engines, NnError};
use mirage::tensor::engines::ExactEngine;
use mirage::tensor::parallel::TileConfig;
use mirage::tensor::{ActivationScratch, Tensor};
use mirage::Mirage;
use mirage_bench::CountingEngine;
use rand::SeedableRng;

/// Every (engine, tiling) stack of the grid: the four arithmetic paths,
/// each serial and under two parallel tile configurations (including a
/// column-tiled one, which exercises `prepare_tile` slicing).
fn engine_stacks(mirage: &Mirage) -> Vec<(String, Engines)> {
    let tilings: [(&str, Option<TileConfig>); 3] = [
        ("serial", None),
        ("par-auto4", Some(TileConfig::auto().with_threads(4))),
        (
            "par-tiled",
            Some(TileConfig {
                tile_m: 8,
                tile_n: 8,
                tile_k: 0,
                threads: 2,
            }),
        ),
    ];
    let mut stacks = Vec::new();
    for (tname, config) in tilings {
        let bases: Vec<(&str, Engines)> = vec![
            ("fp32", Engines::uniform(ExactEngine)),
            ("bfp", Engines::uniform(mirage.gemm_engine())),
            (
                "rns-bfp",
                Engines::uniform(mirage.rns_gemm_engine().expect("paper moduli")),
            ),
            ("photonic", Engines::uniform(mirage.photonic_gemm_engine())),
        ];
        for (ename, engines) in bases {
            let engines = match config {
                Some(c) => engines.parallelized(c),
                None => engines,
            };
            stacks.push((format!("{ename}/{tname}"), engines));
        }
    }
    stacks
}

#[test]
fn mlp_grid_is_bit_identical_across_engines_tiles_and_batches() {
    let mirage = Mirage::paper_default();
    for (name, engines) in engine_stacks(&mirage) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(7001);
        let mut net = small_mlp(32, 16, 4, &mut rng);
        let compiled = net.compile(&engines).expect("mlp compiles");
        let mut scratch = ActivationScratch::new();
        for batch in [1usize, 7, 128] {
            let x = Tensor::randn(&[batch, 32], 1.0, &mut rng);
            let eager = net.forward(&x, &engines).unwrap();
            assert_eq!(
                compiled.run(&x).unwrap().data(),
                eager.data(),
                "{name} batch {batch}"
            );
            assert_eq!(
                compiled.run_with(&x, &mut scratch).unwrap().data(),
                eager.data(),
                "{name} scratch batch {batch}"
            );
        }
        let inputs: Vec<Tensor> = (0..3)
            .map(|_| Tensor::randn(&[5, 32], 1.0, &mut rng))
            .collect();
        for (i, (x, y)) in inputs
            .iter()
            .zip(compiled.run_batch(&inputs).unwrap())
            .enumerate()
        {
            assert_eq!(
                y.data(),
                net.forward(x, &engines).unwrap().data(),
                "{name} batch item {i}"
            );
        }
    }
}

#[test]
fn cnn_with_pooling_is_bit_identical_when_compiled() {
    let mirage = Mirage::paper_default();
    let stacks = [
        ("fp32", Engines::uniform(ExactEngine)),
        ("bfp", Engines::uniform(mirage.gemm_engine())),
        (
            "bfp-par",
            Engines::uniform(mirage.gemm_engine()).parallelized(TileConfig::auto().with_threads(4)),
        ),
    ];
    for (name, engines) in stacks {
        let mut rng = rand::rngs::StdRng::seed_from_u64(7002);
        let mut net = small_cnn(8, 4, &mut rng);
        let compiled = net.compile(&engines).expect("cnn compiles");
        for batch in [1usize, 3] {
            let x = Tensor::randn(&[batch, 1, 8, 8], 1.0, &mut rng);
            let eager = net.forward(&x, &engines).unwrap();
            assert_eq!(
                compiled.run(&x).unwrap().data(),
                eager.data(),
                "{name} batch {batch}"
            );
        }
    }
}

#[test]
fn attention_classifier_is_bit_identical_when_compiled() {
    let mirage = Mirage::paper_default();
    let stacks = [
        ("fp32", Engines::uniform(ExactEngine)),
        ("bfp", Engines::uniform(mirage.gemm_engine())),
    ];
    for (name, engines) in stacks {
        let mut rng = rand::rngs::StdRng::seed_from_u64(7003);
        let mut net = tiny_attention_classifier(4, 6, 8, 2, 3, &mut rng);
        let compiled = net.compile(&engines).expect("attention stack compiles");
        for batch in [1usize, 5] {
            let x = Tensor::randn(&[batch * 4, 6], 1.0, &mut rng);
            let eager = net.forward(&x, &engines).unwrap();
            assert_eq!(
                compiled.run(&x).unwrap().data(),
                eager.data(),
                "{name} batch {batch}"
            );
        }
    }
}

#[test]
fn concurrent_threads_serve_one_compiled_model_bit_identically() {
    let mirage = Mirage::paper_default();
    let mut rng = rand::rngs::StdRng::seed_from_u64(7004);
    let mut net = small_mlp(32, 16, 4, &mut rng);
    let engines = mirage.training_engines();
    let compiled = mirage.compile(&net).expect("mlp compiles");
    let requests: Vec<Tensor> = (0..4)
        .map(|_| Tensor::randn(&[7, 32], 1.0, &mut rng))
        .collect();
    let expected: Vec<Tensor> = requests
        .iter()
        .map(|x| net.forward(x, &engines).unwrap())
        .collect();
    // No mutex is held during a GEMM: every thread serves from &compiled
    // with only its own scratch as mutable state.
    std::thread::scope(|s| {
        for t in 0..4 {
            let (compiled, requests, expected) = (&compiled, &requests, &expected);
            s.spawn(move || {
                let mut scratch = ActivationScratch::new();
                for round in 0..8 {
                    let i = (t + round) % requests.len();
                    let y = compiled.run_with(&requests[i], &mut scratch).unwrap();
                    assert_eq!(y.data(), expected[i].data(), "thread {t} round {round}");
                }
            });
        }
    });
}

#[test]
fn compiled_serving_runs_zero_weight_side_quantization() {
    let mirage = Mirage::paper_default();
    let (engine, counters) = CountingEngine::new(mirage.gemm_engine());
    let engines = Engines::uniform(engine).parallelized(TileConfig::auto().with_threads(2));
    let mut rng = rand::rngs::StdRng::seed_from_u64(7005);
    let mut net = small_mlp(32, 16, 4, &mut rng);
    let compiled = net.compile(&engines).expect("mlp compiles");
    let frozen = counters.weight_side_work();
    assert!(frozen > 0, "compile should have prepared the weights");

    let x = Tensor::randn(&[7, 32], 1.0, &mut rng);
    let mut scratch = ActivationScratch::new();
    for _ in 0..10 {
        compiled.run_with(&x, &mut scratch).unwrap();
    }
    compiled
        .run_batch(&[x.clone(), x.clone(), x.clone()])
        .unwrap();
    assert_eq!(
        counters.weight_side_work(),
        frozen,
        "compiled serving must never re-run weight-side quantization"
    );
    assert!(counters.prepared_gemms() > 0);

    // Contrast: one eager forward pays weight-side work again.
    net.forward(&x, &engines).unwrap();
    assert!(
        counters.weight_side_work() > frozen,
        "eager forward should re-run weight-side work per request"
    );
}

#[test]
fn training_mode_layers_reject_compilation_with_named_layer() {
    let mirage = Mirage::paper_default();
    let mut rng = rand::rngs::StdRng::seed_from_u64(7006);
    let mut net = mirage::nn::Sequential::new();
    net.push(mirage::nn::layers::Dense::new(8, 8, &mut rng));
    net.push(mirage::nn::layers::Dropout::new(0.3, 5));
    match mirage.compile(&net) {
        Err(NnError::NotCompilable { layer, reason }) => {
            assert_eq!(layer, "dropout");
            assert!(reason.contains("set_training(false)"), "{reason}");
        }
        other => panic!("expected NotCompilable, got {other:?}"),
    }
}
