//! Workspace traversal: find the `.rs` files the rules apply to.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Directory names never descended into: build output, vendored stubs
/// (not our code), VCS metadata, and the lint crate's own intentionally
/// violating fixtures.
const SKIP_DIRS: [&str; 4] = ["target", "vendor", ".git", "fixtures"];

/// Collects every `.rs` file under `root`, skipping [`SKIP_DIRS`],
/// sorted by path for deterministic reports.
pub fn rust_files(root: &Path) -> io::Result<Vec<PathBuf>> {
    let mut files = Vec::new();
    collect(root, &mut files)?;
    files.sort();
    Ok(files)
}

fn collect(dir: &Path, files: &mut Vec<PathBuf>) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if !SKIP_DIRS.contains(&name.as_ref()) && !name.starts_with('.') {
                collect(&path, files)?;
            }
        } else if name.ends_with(".rs") {
            files.push(path);
        }
    }
    Ok(())
}

/// Renders `path` relative to `root` with forward slashes (the form the
/// path-scoped rules and reports use).
pub fn relative(root: &Path, path: &Path) -> String {
    path.strip_prefix(root)
        .unwrap_or(path)
        .components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/")
}

/// Walks upward from `start` to the nearest directory whose
/// `Cargo.toml` declares a `[workspace]` — the default lint root.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start);
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if let Ok(text) = fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(d.to_path_buf());
            }
        }
        dir = d.parent();
    }
    None
}
