//! GEMM executed on the device-level photonic simulator.

use mirage_arch::MirageConfig;
use mirage_bfp::{BfpBlock, BfpConfig};
use mirage_photonics::RnsMmvmu;
use mirage_tensor::engines::{BfpEngine, GemmEngine};
use mirage_tensor::{Result, Tensor, TensorError};

/// A [`GemmEngine`] that runs every tile through the photonic
/// RNS-MMVMU simulator — phase accumulation in cascaded MMUs, I/Q
/// phase detection, ADC quantization and reverse conversion — i.e. the
/// complete Fig. 2 dataflow at device level.
///
/// Noiseless by construction (design-point laser power); the noise
/// study lives in `mirage_photonics::RnsMmvmu::mvm_signed_noisy` and
/// the `fige_variation` bench. Bit-identical to
/// [`BfpEngine`] — an equivalence the test suite enforces.
///
/// Tile-invariant: each photonic output row depends only on its own
/// stationary weight row and the streamed activation column, so wrapping
/// this engine in `mirage_tensor::parallel::ParallelGemm` fans the
/// simulated MMVMU tiles across host threads bit-identically — the
/// multi-threaded analogue of the eight hardware MMVMUs computing in
/// parallel.
#[derive(Debug, Clone)]
pub struct PhotonicGemmEngine {
    bfp: BfpConfig,
    unit: RnsMmvmu,
    rows: usize,
}

impl PhotonicGemmEngine {
    /// Builds the engine for an accelerator configuration.
    pub fn new(cfg: &MirageConfig) -> Self {
        PhotonicGemmEngine {
            bfp: BfpConfig::new(cfg.bm, cfg.g).expect("validated by MirageConfig"),
            unit: RnsMmvmu::new(&cfg.moduli, cfg.rows, cfg.g, &cfg.photonics),
            rows: cfg.rows,
        }
    }

    /// The BFP operating point in use.
    pub fn bfp_config(&self) -> BfpConfig {
        self.bfp
    }
}

impl GemmEngine for PhotonicGemmEngine {
    fn name(&self) -> &'static str {
        "mirage-photonic"
    }

    /// `true`: each simulated output row depends only on its own
    /// stationary weight row and the streamed activation column (the
    /// `tiles_larger_than_array_height` test pins this against the BFP
    /// reference for arbitrary row-tile membership).
    fn tile_invariant(&self) -> bool {
        true
    }

    fn gemm(&self, a: &Tensor, b: &Tensor) -> Result<Tensor> {
        let (m, _k, n) = dims(a, b)?;
        let a_rows = BfpEngine::quantize_rows(a, self.bfp);
        let bt = b.transpose2d()?;
        let b_cols = BfpEngine::quantize_rows(&bt, self.bfp);
        let groups_per_row = a_rows.first().map(Vec::len).unwrap_or(0);

        let mut out = vec![0.0f32; m * n];
        // Stationary tiles: `rows` rows of A x one k-group; stream the
        // columns of B through each tile (DF1 / weight-stationary).
        for row_tile in (0..m).step_by(self.rows) {
            let tile_rows = (row_tile + self.rows).min(m) - row_tile;
            for gi in 0..groups_per_row {
                // Program the phase shifters with this tile's mantissae.
                let weight_tile: Vec<Vec<i64>> = (0..tile_rows)
                    .map(|r| {
                        a_rows[row_tile + r][gi]
                            .mantissas()
                            .iter()
                            .map(|&v| i64::from(v))
                            .collect()
                    })
                    .collect();
                for (j, bcol) in b_cols.iter().enumerate() {
                    let xg: &BfpBlock = &bcol[gi];
                    let x: Vec<i64> = xg.mantissas().iter().map(|&v| i64::from(v)).collect();
                    // One photonic modular MVM (Fig. 2 step 5-7).
                    let outputs = self
                        .unit
                        .mvm_signed_ideal(&x, &weight_tile)
                        .map_err(|e| TensorError::InvalidGeometry(e.to_string()))?;
                    // Exponent recombination + FP32 accumulation (8-9).
                    for (r, &integer) in outputs.iter().enumerate() {
                        let scale_exp = a_rows[row_tile + r][gi].scale_exp() + xg.scale_exp();
                        out[(row_tile + r) * n + j] +=
                            (integer as f64 * (scale_exp as f64).exp2()) as f32;
                    }
                }
            }
        }
        Tensor::from_vec(out, &[m, n])
    }
}

fn dims(a: &Tensor, b: &Tensor) -> Result<(usize, usize, usize)> {
    for t in [a, b] {
        if t.rank() != 2 {
            return Err(TensorError::RankMismatch {
                expected: 2,
                actual: t.rank(),
            });
        }
    }
    if a.shape()[1] != b.shape()[0] {
        return Err(TensorError::DimMismatch {
            left: a.shape()[1],
            right: b.shape()[0],
        });
    }
    Ok((a.shape()[0], a.shape()[1], b.shape()[1]))
}

#[cfg(test)]
mod tests {
    use super::*;
    use mirage_tensor::engines::BfpEngine;
    use rand::SeedableRng;

    #[test]
    fn matches_bfp_engine_bit_exactly() {
        let cfg = MirageConfig::default();
        let engine = PhotonicGemmEngine::new(&cfg);
        let fast = BfpEngine::new(engine.bfp_config());
        let mut rng = rand::rngs::StdRng::seed_from_u64(77);
        for (m, k, n) in [(1, 16, 1), (5, 33, 4), (40, 20, 3)] {
            let a = Tensor::randn(&[m, k], 1.0, &mut rng);
            let b = Tensor::randn(&[k, n], 1.0, &mut rng);
            let c_ph = engine.gemm(&a, &b).unwrap();
            let c_bf = fast.gemm(&a, &b).unwrap();
            assert_eq!(c_ph.data(), c_bf.data(), "{m}x{k}x{n}");
        }
    }

    #[test]
    fn rejects_bad_shapes() {
        let engine = PhotonicGemmEngine::new(&MirageConfig::default());
        assert!(engine
            .gemm(&Tensor::zeros(&[2, 3]), &Tensor::zeros(&[4, 5]))
            .is_err());
        assert!(engine
            .gemm(&Tensor::zeros(&[2]), &Tensor::zeros(&[2, 2]))
            .is_err());
    }

    #[test]
    fn parallel_driver_is_bit_identical_on_the_device_path() {
        use mirage_tensor::parallel::TileConfig;
        let engine = PhotonicGemmEngine::new(&MirageConfig::default());
        let mut rng = rand::rngs::StdRng::seed_from_u64(79);
        let a = Tensor::randn(&[48, 32], 1.0, &mut rng);
        let b = Tensor::randn(&[32, 24], 1.0, &mut rng);
        let serial = engine.gemm(&a, &b).unwrap();
        let parallel = engine
            .clone()
            .parallel_with(TileConfig {
                tile_m: 16,
                tile_n: 8,
                tile_k: 0,
                threads: 4,
            })
            .gemm(&a, &b)
            .unwrap();
        assert_eq!(parallel.data(), serial.data());
    }

    #[test]
    fn tiles_larger_than_array_height() {
        // m = 70 forces three stationary row tiles on the 32-row array.
        let cfg = MirageConfig::default();
        let engine = PhotonicGemmEngine::new(&cfg);
        let mut rng = rand::rngs::StdRng::seed_from_u64(78);
        let a = Tensor::randn(&[70, 16], 1.0, &mut rng);
        let b = Tensor::randn(&[16, 2], 1.0, &mut rng);
        let c = engine.gemm(&a, &b).unwrap();
        let want = BfpEngine::new(engine.bfp_config()).gemm(&a, &b).unwrap();
        assert_eq!(c.data(), want.data());
    }
}
