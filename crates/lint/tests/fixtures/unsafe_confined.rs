//! Fixture for the `unsafe-confined` rule.
//!
//! Linted twice by `rules_fire.rs`:
//! * as `crates/bfp/src/simd.rs` (allowlisted): the three justified
//!   `unsafe` sites (trailing `SAFETY:`, `SAFETY:` block above, rustdoc
//!   `# Safety` section) stay silent, the bare one and the
//!   stale-comment one fire, and the waived one comes back waived —
//!   2 active, 1 waived;
//! * as `crates/x/src/other.rs` (not allowlisted): every `unsafe` token
//!   fires regardless of justification — 5 active (the reasoned waiver
//!   still covers its line), 1 waived.
//!
//! Never compiled — consumed via `include_str!`.

fn justified_trailing() {
    let x = unsafe { core::ptr::read(&0i32) }; // SAFETY: reads a live local.
    let _ = x;
}

fn justified_block_above() {
    // SAFETY: the pointer comes from a reference two lines up, so it is
    // valid, aligned, and initialized for the whole call.
    let x = unsafe { core::ptr::read(&1i32) };
    let _ = x;
}

/// A declaration justified by its rustdoc safety section, the idiom
/// for `unsafe fn` (the contract binds the caller, not one call site).
///
/// # Safety
///
/// `p` must be valid, aligned, and initialized for an `i32` read.
unsafe fn doc_justified(p: *const i32) -> i32 {
    core::ptr::read(p)
}

fn comment_too_far_away() {
    // SAFETY: this comment is stale — more than six lines separate it
    // from the unsafe block below, so it no longer justifies anything.
    let a = 0;
    let b = a + 1;
    let c = b + 1;
    let d = c + 1;
    let e = d + 1;
    let x = unsafe { core::ptr::read(&e) };
    let _ = x;
}

fn bare() {
    let x = unsafe { core::ptr::read(&2i32) };
    let _ = x;
}

fn waived() {
    // mirage-lint: allow(unsafe_ok) -- fixture: reasoned waiver under test
    let x = unsafe { core::ptr::read(&3i32) };
    let _ = x;
}
