//! Property-based tests on the GEMM engines.

use mirage_bfp::BfpConfig;
use mirage_tensor::engines::{
    AnalogFxpEngine, Bf16Engine, BfpEngine, ExactEngine, Hfp8Engine, IntEngine, RnsBfpEngine,
    StochasticBfpEngine,
};
use mirage_tensor::{GemmEngine, Tensor};
use proptest::prelude::*;

fn tensor_pair() -> impl Strategy<Value = (Tensor, Tensor, usize, usize, usize)> {
    (1usize..8, 1usize..40, 1usize..8, any::<u64>()).prop_map(|(m, k, n, seed)| {
        let mut state = seed | 1;
        let mut next = || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            ((state >> 40) as f32 / 8388608.0) - 1.0
        };
        let a = Tensor::from_vec((0..m * k).map(|_| next()).collect(), &[m, k]).unwrap();
        let b = Tensor::from_vec((0..k * n).map(|_| next()).collect(), &[k, n]).unwrap();
        (a, b, m, k, n)
    })
}

proptest! {
    /// Every engine produces outputs with the right shape and finite
    /// values, and approximates the FP32 result within its format's
    /// error budget.
    #[test]
    fn engines_bounded_error((a, b, m, k, n) in tensor_pair()) {
        let exact = ExactEngine.gemm(&a, &b).unwrap();
        let scale = exact.max_abs().max(0.5);
        // (engine, allowed relative error on |.|_inf).
        let mirage = BfpEngine::new(BfpConfig::mirage_default());
        let rns = RnsBfpEngine::with_min_special_set(BfpConfig::mirage_default()).unwrap();
        let fmac = StochasticBfpEngine::new(BfpConfig::mirage_default(), 3);
        let analog = AnalogFxpEngine::new(8, 16, 16);
        let hfp8 = Hfp8Engine::default();
        let int8 = IntEngine::int8();
        let int12 = IntEngine::int12();
        let cases: Vec<(&dyn GemmEngine, f32)> = vec![
            (&Bf16Engine, 0.05),
            (&hfp8, 0.35),
            (&int8, 0.15),
            (&int12, 0.05),
            (&mirage, 0.5),
            (&rns, 0.5),
            (&fmac, 0.6),
            (&analog, 0.3),
        ];
        for (engine, tol) in cases {
            let c = engine.gemm(&a, &b).unwrap();
            prop_assert_eq!(c.shape(), &[m, n], "{}", engine.name());
            prop_assert!(c.data().iter().all(|v| v.is_finite()), "{}", engine.name());
            let err = c.sub(&exact).unwrap().max_abs();
            prop_assert!(
                err <= tol * scale * (k as f32).sqrt().max(1.0),
                "{}: err = {err}, scale = {scale}", engine.name()
            );
        }
    }

    /// The RNS path is always bit-identical to the plain BFP path —
    /// the paper's exactness claim, across random shapes and configs.
    #[test]
    fn rns_always_bit_identical(
        (a, b, _, _, _) in tensor_pair(),
        bm in 3u32..=6,
    ) {
        let cfg = BfpConfig::new(bm, 16).unwrap();
        let bfp = BfpEngine::new(cfg);
        let rns = RnsBfpEngine::with_min_special_set(cfg).unwrap();
        let c1 = bfp.gemm(&a, &b).unwrap();
        let c2 = rns.gemm(&a, &b).unwrap();
        prop_assert_eq!(c1.data(), c2.data());
    }

    /// GEMM engines are deterministic (same input -> same output).
    #[test]
    fn engines_deterministic((a, b, _, _, _) in tensor_pair()) {
        let mirage = BfpEngine::new(BfpConfig::mirage_default());
        let fmac = StochasticBfpEngine::new(BfpConfig::mirage_default(), 9);
        let engines: Vec<&dyn GemmEngine> =
            vec![&ExactEngine, &Bf16Engine, &mirage, &fmac];
        for e in engines {
            prop_assert_eq!(e.gemm(&a, &b).unwrap(), e.gemm(&a, &b).unwrap(), "{}", e.name());
        }
    }
}
