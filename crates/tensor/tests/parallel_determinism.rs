//! Determinism regression: the tiled multi-threaded GEMM driver must be
//! **bit-identical** to serial execution for the deterministic engines
//! (exact FP32, BFP, RNS-BFP), across ragged shapes, tile geometries and
//! thread counts. This is the contract that lets training and the figure
//! benches run on the parallel path by default without perturbing any
//! paper-accuracy number.
//!
//! The prepared-weight path carries the same contract: `prepare` +
//! `gemm_prepared` must be bit-identical to plain `gemm` — serially and
//! under every tiling — and degenerate (zero-dimension) shapes must
//! produce well-formed empty/zero results through every path.

use mirage_bfp::{BfpBlock, BfpConfig};
use mirage_rns::convert::{CrtConverter, ReverseConverter};
use mirage_rns::residue;
use mirage_tensor::engines::{BfpEngine, ExactEngine, RnsBfpEngine};
use mirage_tensor::parallel::{ParallelGemm, TileConfig};
use mirage_tensor::{GemmEngine, Tensor};
use rand::SeedableRng;

fn pair(seed: u64, m: usize, k: usize, n: usize) -> (Tensor, Tensor) {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    (
        Tensor::randn(&[m, k], 1.0, &mut rng),
        Tensor::randn(&[k, n], 1.0, &mut rng),
    )
}

/// Shapes with ragged band/tile tails, all above the serial-fallback
/// threshold so the threaded path really executes.
const SHAPES: [(usize, usize, usize); 4] =
    [(48, 48, 48), (65, 33, 37), (40, 100, 23), (128, 17, 64)];

/// Tile geometries exercising row bands only, row+column tiles, and the
/// auto heuristic, at 2 and 4 workers.
fn configs() -> Vec<TileConfig> {
    let mut configs = Vec::new();
    for threads in [2, 4] {
        configs.push(TileConfig {
            tile_m: 8,
            tile_n: 0,
            tile_k: 0,
            threads,
        });
        configs.push(TileConfig {
            tile_m: 7,
            tile_n: 13,
            tile_k: 0,
            threads,
        });
        configs.push(TileConfig::auto().with_threads(threads));
    }
    configs
}

fn assert_parallel_matches_serial<E: GemmEngine + Clone>(engine: E, seed: u64) {
    for (m, k, n) in SHAPES {
        let (a, b) = pair(seed ^ (m as u64) << 8 ^ n as u64, m, k, n);
        let serial = engine.gemm(&a, &b).unwrap();
        for config in configs() {
            let parallel = ParallelGemm::new(engine.clone(), config)
                .gemm(&a, &b)
                .unwrap();
            assert_eq!(
                parallel.data(),
                serial.data(),
                "{} diverged on {m}x{k}x{n} with {config:?}",
                engine.name()
            );
        }
    }
}

#[test]
fn exact_engine_parallel_is_bit_identical() {
    assert_parallel_matches_serial(ExactEngine, 1);
}

#[test]
fn bfp_engine_parallel_is_bit_identical() {
    assert_parallel_matches_serial(BfpEngine::new(BfpConfig::mirage_default()), 2);
}

#[test]
fn rns_bfp_engine_parallel_is_bit_identical() {
    let engine = RnsBfpEngine::with_min_special_set(BfpConfig::mirage_default()).unwrap();
    assert_parallel_matches_serial(engine, 3);
}

#[test]
fn parallel_runs_are_reproducible_across_invocations() {
    // Same inputs, same config, two independent scoped-thread fan-outs:
    // scheduling must not leak into results.
    let (a, b) = pair(4, 64, 64, 64);
    let engine = ParallelGemm::new(
        BfpEngine::new(BfpConfig::mirage_default()),
        TileConfig::auto().with_threads(4),
    );
    let first = engine.gemm(&a, &b).unwrap();
    let second = engine.gemm(&a, &b).unwrap();
    assert_eq!(first.data(), second.data());
}

/// The prepared-path analogue of `assert_parallel_matches_serial`: one
/// preparation reused across every tile geometry and thread count must
/// reproduce the serial unprepared result bit-exactly — serially, under
/// the threaded driver, and through the driver-level `prepare`.
fn assert_prepared_matches_unprepared<E: GemmEngine + Clone>(engine: E, seed: u64) {
    for (m, k, n) in SHAPES {
        let (a, b) = pair(seed ^ (m as u64) << 8 ^ n as u64, m, k, n);
        let serial = engine.gemm(&a, &b).unwrap();
        let prepared = engine.prepare(&b).unwrap();
        assert_eq!(
            engine.gemm_prepared(&a, &prepared).unwrap().data(),
            serial.data(),
            "{} serial prepared path diverged on {m}x{k}x{n}",
            engine.name()
        );
        for config in configs() {
            let driver = ParallelGemm::new(engine.clone(), config);
            assert_eq!(
                driver.gemm_prepared(&a, &prepared).unwrap().data(),
                serial.data(),
                "{} prepared diverged on {m}x{k}x{n} with {config:?}",
                engine.name()
            );
            // The driver's own prepare delegates to the engine's.
            let driver_prepared = driver.prepare(&b).unwrap();
            assert_eq!(
                driver.gemm_prepared(&a, &driver_prepared).unwrap().data(),
                serial.data(),
                "{} driver-prepared diverged on {m}x{k}x{n} with {config:?}",
                engine.name()
            );
        }
    }
}

#[test]
fn exact_engine_prepared_is_bit_identical() {
    assert_prepared_matches_unprepared(ExactEngine, 11);
}

#[test]
fn bfp_engine_prepared_is_bit_identical() {
    assert_prepared_matches_unprepared(BfpEngine::new(BfpConfig::mirage_default()), 12);
}

#[test]
fn rns_bfp_engine_prepared_is_bit_identical() {
    let engine = RnsBfpEngine::with_min_special_set(BfpConfig::mirage_default()).unwrap();
    assert_prepared_matches_unprepared(engine, 13);
}

/// Zero-dimension GEMMs must return well-formed empty (or all-zero)
/// results through the serial engines, the threaded driver, and the
/// prepared paths — never panic on empty bands or tiles.
fn assert_empty_shapes_are_well_formed<E: GemmEngine + Clone>(engine: E) {
    // (200, 0, 200) clears MIN_PARALLEL_WORK (k is clamped to 1 in the
    // work estimate), so the threaded fan-out itself sees k = 0.
    for (m, k, n) in [(0, 8, 4), (4, 0, 8), (8, 4, 0), (0, 0, 0), (200, 0, 200)] {
        let a = Tensor::zeros(&[m, k]);
        let b = Tensor::zeros(&[k, n]);
        let serial = engine.gemm(&a, &b).unwrap();
        assert_eq!(serial.shape(), &[m, n], "{} {m}x{k}x{n}", engine.name());
        assert!(
            serial.data().iter().all(|&v| v == 0.0),
            "{} {m}x{k}x{n} produced non-zero output from zero inputs",
            engine.name()
        );
        let prepared = engine.prepare(&b).unwrap();
        assert_eq!(
            engine.gemm_prepared(&a, &prepared).unwrap().data(),
            serial.data()
        );
        for config in [
            TileConfig::auto().with_threads(4),
            TileConfig {
                tile_m: 3,
                tile_n: 5,
                tile_k: 0,
                threads: 4,
            },
        ] {
            let driver = ParallelGemm::new(engine.clone(), config);
            assert_eq!(
                driver.gemm(&a, &b).unwrap().data(),
                serial.data(),
                "{} {m}x{k}x{n} {config:?}",
                engine.name()
            );
            assert_eq!(
                driver.gemm_prepared(&a, &prepared).unwrap().data(),
                serial.data()
            );
            // Batched: empty batch, and a batch of empty items.
            assert!(driver.gemm_batch(&[], &b).unwrap().is_empty());
            let batch = driver.gemm_batch(std::slice::from_ref(&a), &b).unwrap();
            assert_eq!(batch.len(), 1);
            assert_eq!(batch[0].shape(), &[m, n]);
        }
    }
}

#[test]
fn exact_engine_handles_empty_shapes() {
    assert_empty_shapes_are_well_formed(ExactEngine);
}

#[test]
fn bfp_engine_handles_empty_shapes() {
    assert_empty_shapes_are_well_formed(BfpEngine::new(BfpConfig::mirage_default()));
}

#[test]
fn rns_bfp_engine_handles_empty_shapes() {
    let engine = RnsBfpEngine::with_min_special_set(BfpConfig::mirage_default()).unwrap();
    assert_empty_shapes_are_well_formed(engine);
}

/// The legacy block-path BFP GEMM: the reference implementation the
/// packed flat kernels must reproduce bit-for-bit.
fn legacy_bfp_gemm(a: &Tensor, b: &Tensor, config: BfpConfig) -> Tensor {
    let (m, n) = (a.shape()[0], b.shape()[1]);
    let a_rows = BfpEngine::quantize_rows(a, config);
    let b_cols = BfpEngine::quantize_cols(b, config).unwrap();
    let mut out = vec![0.0f32; m * n];
    for (i, arow) in a_rows.iter().enumerate() {
        for (j, bcol) in b_cols.iter().enumerate() {
            let mut acc = 0.0f32;
            for (ga, gb) in arow.iter().zip(bcol) {
                acc += ga.dot(gb).unwrap().to_f32();
            }
            out[i * n + j] = acc;
        }
    }
    Tensor::from_vec(out, &[m, n]).unwrap()
}

/// The legacy per-group RNS GEMM: `BfpBlock` chains forward-converted
/// group by group, validated CRT reverse conversion, `exp2`
/// recombination — the pre-packed implementation kept as the oracle.
fn legacy_rns_gemm(a: &Tensor, b: &Tensor, engine: &RnsBfpEngine) -> Tensor {
    let (m, n) = (a.shape()[0], b.shape()[1]);
    let moduli = engine.moduli().moduli();
    let converter = CrtConverter::new(engine.moduli());
    type Converted = Vec<Vec<(i32, Vec<Vec<u64>>)>>;
    let convert = |blocks: Vec<Vec<BfpBlock>>| -> Converted {
        blocks
            .iter()
            .map(|groups| {
                groups
                    .iter()
                    .map(|block| {
                        let wide = block.mantissas_i64();
                        (
                            block.scale_exp(),
                            moduli
                                .iter()
                                .map(|&md| residue::reduce_signed(&wide, md))
                                .collect(),
                        )
                    })
                    .collect()
            })
            .collect()
    };
    let a_rows = convert(BfpEngine::quantize_rows(a, engine.config()));
    let b_cols = convert(BfpEngine::quantize_cols(b, engine.config()).unwrap());
    let mut out = vec![0.0f32; m * n];
    for (i, arow) in a_rows.iter().enumerate() {
        for (j, bcol) in b_cols.iter().enumerate() {
            let mut acc = 0.0f32;
            for ((ea, ga), (eb, gb)) in arow.iter().zip(bcol) {
                let residues: Vec<u64> = moduli
                    .iter()
                    .enumerate()
                    .map(|(c, &md)| residue::dot_product(&ga[c], &gb[c], md).unwrap())
                    .collect();
                let integer = converter.to_signed(&residues).unwrap() as f64;
                acc += (integer * ((ea + eb) as f64).exp2()) as f32;
            }
            out[i * n + j] = acc;
        }
    }
    Tensor::from_vec(out, &[m, n]).unwrap()
}

/// Packed == legacy across the full serving grid: every combination of
/// {serial, parallel} × {unprepared, prepared} × {single, batched}
/// must reproduce the legacy block-path result bit-exactly, on ragged
/// tails (`k % g != 0`) and zero-dimension shapes alike.
fn assert_packed_matches_legacy_everywhere<E: GemmEngine + Clone>(
    engine: E,
    legacy: impl Fn(&Tensor, &Tensor) -> Tensor,
    seed: u64,
) {
    // SHAPES has ragged band/tile tails; add explicit ragged-k (k % 16
    // != 0) and zero-dimension cases.
    let grid = SHAPES
        .iter()
        .copied()
        .chain([(7, 19, 9), (0, 16, 4), (4, 0, 8), (8, 4, 0)]);
    for (m, k, n) in grid {
        let (a, b) = pair(
            seed ^ (m as u64) << 16 ^ (k as u64) << 8 ^ n as u64,
            m,
            k,
            n,
        );
        let want = legacy(&a, &b);
        assert_eq!(
            engine.gemm(&a, &b).unwrap().data(),
            want.data(),
            "{} serial diverged from legacy on {m}x{k}x{n}",
            engine.name()
        );
        let prepared = engine.prepare(&b).unwrap();
        assert_eq!(
            engine.gemm_prepared(&a, &prepared).unwrap().data(),
            want.data(),
            "{} prepared diverged from legacy on {m}x{k}x{n}",
            engine.name()
        );
        for config in [
            TileConfig::auto().with_threads(4),
            TileConfig {
                tile_m: 7,
                tile_n: 13,
                tile_k: 0,
                threads: 4,
            },
        ] {
            let driver = ParallelGemm::new(engine.clone(), config);
            assert_eq!(
                driver.gemm(&a, &b).unwrap().data(),
                want.data(),
                "{} parallel diverged from legacy on {m}x{k}x{n} {config:?}",
                engine.name()
            );
            assert_eq!(
                driver.gemm_prepared(&a, &prepared).unwrap().data(),
                want.data(),
                "{} parallel+prepared diverged on {m}x{k}x{n} {config:?}",
                engine.name()
            );
            let batch = driver.gemm_batch(&[a.clone(), a.clone()], &b).unwrap();
            let batch_prepared = driver
                .gemm_batch_prepared(&[a.clone(), a.clone()], &prepared)
                .unwrap();
            for item in batch.iter().chain(&batch_prepared) {
                assert_eq!(
                    item.data(),
                    want.data(),
                    "{} batched diverged on {m}x{k}x{n} {config:?}",
                    engine.name()
                );
            }
        }
    }
}

#[test]
fn bfp_packed_kernels_match_legacy_blocks_everywhere() {
    let config = BfpConfig::mirage_default();
    assert_packed_matches_legacy_everywhere(
        BfpEngine::new(config),
        |a, b| legacy_bfp_gemm(a, b, config),
        21,
    );
}

#[test]
fn rns_bfp_packed_kernels_match_legacy_groups_everywhere() {
    let engine = RnsBfpEngine::with_min_special_set(BfpConfig::mirage_default()).unwrap();
    let oracle = engine.clone();
    assert_packed_matches_legacy_everywhere(engine, |a, b| legacy_rns_gemm(a, b, &oracle), 22);
}

#[test]
fn batched_prepared_path_is_bit_identical_per_item() {
    let engine = BfpEngine::new(BfpConfig::mirage_default());
    let parallel = ParallelGemm::new(engine, TileConfig::auto().with_threads(4));
    let mut rng = rand::rngs::StdRng::seed_from_u64(6);
    let b = Tensor::randn(&[48, 16], 1.0, &mut rng);
    let prepared = engine.prepare(&b).unwrap();
    let inputs: Vec<Tensor> = (0..8)
        .map(|_| Tensor::randn(&[12, 48], 1.0, &mut rng))
        .collect();
    // Two batches against one preparation: the cross-call reuse pattern.
    for _ in 0..2 {
        let batch = parallel.gemm_batch_prepared(&inputs, &prepared).unwrap();
        for (input, got) in inputs.iter().zip(&batch) {
            assert_eq!(got.data(), engine.gemm(input, &b).unwrap().data());
        }
    }
    assert!(parallel
        .gemm_batch_prepared(&[], &prepared)
        .unwrap()
        .is_empty());
}

#[test]
fn batched_path_is_bit_identical_per_item() {
    let engine = RnsBfpEngine::with_min_special_set(BfpConfig::mirage_default()).unwrap();
    let parallel = ParallelGemm::new(engine.clone(), TileConfig::auto().with_threads(4));
    let mut rng = rand::rngs::StdRng::seed_from_u64(5);
    let b = Tensor::randn(&[48, 16], 1.0, &mut rng);
    let inputs: Vec<Tensor> = (0..8)
        .map(|_| Tensor::randn(&[12, 48], 1.0, &mut rng))
        .collect();
    let batch = parallel.gemm_batch(&inputs, &b).unwrap();
    for (input, got) in inputs.iter().zip(&batch) {
        assert_eq!(got.data(), engine.gemm(input, &b).unwrap().data());
    }
}
