use std::error::Error;
use std::fmt;

/// Errors produced during network construction and training.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum NnError {
    /// Propagated tensor/engine error.
    Tensor(mirage_tensor::TensorError),
    /// `backward` was called before `forward` (no cached activations).
    BackwardBeforeForward,
    /// Label index outside the class count.
    InvalidLabel {
        /// The offending label.
        label: usize,
        /// Number of classes.
        classes: usize,
    },
    /// Batch size mismatch between inputs and labels.
    BatchMismatch {
        /// Input batch size.
        inputs: usize,
        /// Label count.
        labels: usize,
    },
    /// The loss became NaN or infinite — training diverged.
    Diverged,
    /// A layer could not be frozen into an inference plan step
    /// (`Layer::compile`) — e.g. a training-only layer still in
    /// training mode, or a custom layer without a compiled form.
    NotCompilable {
        /// `Layer::name` of the offending layer.
        layer: String,
        /// Why the layer cannot be compiled, and what to do about it.
        reason: String,
    },
    /// A shard/pipeline placement request is invalid (zero shard
    /// count, zero pipeline stages, an empty sharded step, …).
    ShardConfig {
        /// What was wrong with the requested placement.
        reason: String,
    },
    /// An eager plan step's wrapped layer is poisoned: a previous
    /// request panicked mid-`forward`, so the layer's internal state
    /// may be inconsistent and the step refuses to serve from it
    /// (recompile the network to recover).
    PoisonedStep {
        /// `Layer::name` of the wrapped layer.
        layer: String,
    },
}

impl fmt::Display for NnError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NnError::Tensor(e) => write!(f, "tensor error: {e}"),
            NnError::BackwardBeforeForward => {
                write!(f, "backward called before forward")
            }
            NnError::InvalidLabel { label, classes } => {
                write!(f, "label {label} outside class range 0..{classes}")
            }
            NnError::BatchMismatch { inputs, labels } => {
                write!(f, "batch size mismatch: {inputs} inputs vs {labels} labels")
            }
            NnError::Diverged => write!(f, "loss is not finite; training diverged"),
            NnError::NotCompilable { layer, reason } => {
                write!(f, "layer {layer:?} cannot be compiled: {reason}")
            }
            NnError::ShardConfig { reason } => {
                write!(f, "invalid shard placement: {reason}")
            }
            NnError::PoisonedStep { layer } => {
                write!(
                    f,
                    "eager step for layer {layer:?} is poisoned by a panicked \
                     request; recompile the network to recover"
                )
            }
        }
    }
}

impl Error for NnError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            NnError::Tensor(e) => Some(e),
            _ => None,
        }
    }
}

impl From<mirage_tensor::TensorError> for NnError {
    fn from(e: mirage_tensor::TensorError) -> Self {
        NnError::Tensor(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = NnError::from(mirage_tensor::TensorError::DimMismatch { left: 1, right: 2 });
        assert!(e.source().is_some());
        assert!(NnError::Diverged.source().is_none());
        assert!(NnError::Diverged.to_string().contains("diverged"));
    }
}
