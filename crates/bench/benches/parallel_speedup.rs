//! Serial vs tiled-parallel GEMM: the perf-trajectory bench for the
//! multi-threaded execution layer.
//!
//! Runs a 256×256×256 GEMM (and a batched-inference workload) through
//! the exact FP32 and Mirage BFP engines, serially and on
//! `ParallelGemm`, asserting bit-identical outputs and reporting the
//! wall-clock speedup. To match the acceptance criterion the bench pins
//! **at least 4 workers even on smaller hosts** (unlike the library's
//! auto heuristic, which never oversubscribes); on a ≥ 4-core host
//! expect ≥ 2×, on fewer cores the pinned oversubscription can report
//! < 1×.
//!
//! `MIRAGE_THREADS` overrides the worker count.

use criterion::Criterion;
use mirage_bench::print_table;
use mirage_bfp::BfpConfig;
use mirage_core::Mirage;
use mirage_tensor::engines::{BfpEngine, ExactEngine};
use mirage_tensor::parallel::{ParallelGemm, TileConfig};
use mirage_tensor::{GemmEngine, Tensor};
use rand::SeedableRng;
use std::hint::black_box;
use std::time::{Duration, Instant};

const M: usize = 256;
const K: usize = 256;
const N: usize = 256;

/// Best-of-`reps` wall clock for one invocation of `f`.
fn best_of<F: FnMut()>(reps: usize, mut f: F) -> Duration {
    let mut best = Duration::MAX;
    for _ in 0..reps {
        let t0 = Instant::now();
        f();
        best = best.min(t0.elapsed());
    }
    best
}

fn ms(d: Duration) -> f64 {
    d.as_secs_f64() * 1e3
}

fn main() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(2024);
    let a = Tensor::randn(&[M, K], 1.0, &mut rng);
    let b = Tensor::randn(&[K, N], 1.0, &mut rng);

    // At least the acceptance floor of 4 workers even on small hosts;
    // more if the machine (or MIRAGE_THREADS) offers them.
    let threads = TileConfig::auto().effective_threads().max(4);
    let config = TileConfig::auto().with_threads(threads);

    let mut rows = Vec::new();

    {
        let serial = ExactEngine;
        let parallel = ParallelGemm::new(ExactEngine, config);
        let c_serial = serial.gemm(&a, &b).unwrap();
        let c_parallel = parallel.gemm(&a, &b).unwrap();
        assert_eq!(c_serial.data(), c_parallel.data(), "fp32 outputs diverged");
        let t_serial = best_of(5, || {
            black_box(serial.gemm(black_box(&a), black_box(&b)).unwrap());
        });
        let t_parallel = best_of(5, || {
            black_box(parallel.gemm(black_box(&a), black_box(&b)).unwrap());
        });
        rows.push(vec![
            "fp32".into(),
            format!("{M}x{K}x{N}"),
            format!("{:.2}", ms(t_serial)),
            format!("{:.2}", ms(t_parallel)),
            format!("{:.2}x", t_serial.as_secs_f64() / t_parallel.as_secs_f64()),
            "yes".into(),
        ]);
    }

    let serial_bfp = BfpEngine::new(BfpConfig::mirage_default());
    {
        let serial = serial_bfp;
        let parallel = ParallelGemm::new(serial, config);
        let c_serial = serial.gemm(&a, &b).unwrap();
        let c_parallel = parallel.gemm(&a, &b).unwrap();
        assert_eq!(
            c_serial.data(),
            c_parallel.data(),
            "mirage-bfp outputs diverged"
        );
        let t_serial = best_of(3, || {
            black_box(serial.gemm(black_box(&a), black_box(&b)).unwrap());
        });
        let t_parallel = best_of(3, || {
            black_box(parallel.gemm(black_box(&a), black_box(&b)).unwrap());
        });
        rows.push(vec![
            "mirage-bfp".into(),
            format!("{M}x{K}x{N}"),
            format!("{:.2}", ms(t_serial)),
            format!("{:.2}", ms(t_parallel)),
            format!("{:.2}x", t_serial.as_secs_f64() / t_parallel.as_secs_f64()),
            "yes".into(),
        ]);
    }

    // Batched inference: 16 activation matrices against one weight,
    // serial loop vs one amortized thread scope.
    let mirage = Mirage::paper_default();
    let weight = Tensor::randn(&[K, N], 1.0, &mut rng);
    let batch: Vec<Tensor> = (0..16)
        .map(|_| Tensor::randn(&[64, K], 1.0, &mut rng))
        .collect();
    {
        let serial_engine = mirage.gemm_engine();
        let serial_batch: Vec<Tensor> = batch
            .iter()
            .map(|x| serial_engine.gemm(x, &weight).unwrap())
            .collect();
        let batched = mirage.infer_batch(&batch, &weight).unwrap();
        for (s, p) in serial_batch.iter().zip(&batched) {
            assert_eq!(s.data(), p.data(), "batched inference diverged");
        }
        let t_serial = best_of(3, || {
            for x in &batch {
                black_box(serial_engine.gemm(black_box(x), &weight).unwrap());
            }
        });
        let t_batched = best_of(3, || {
            black_box(mirage.infer_batch(black_box(&batch), &weight).unwrap());
        });
        rows.push(vec![
            "mirage-bfp (batch 16)".into(),
            format!("16x 64x{K}x{N}"),
            format!("{:.2}", ms(t_serial)),
            format!("{:.2}", ms(t_batched)),
            format!("{:.2}x", t_serial.as_secs_f64() / t_batched.as_secs_f64()),
            "yes".into(),
        ]);
    }

    print_table(
        &format!("Parallel GEMM speedup — {threads} worker threads"),
        &[
            "engine",
            "shape",
            "serial (ms)",
            "parallel (ms)",
            "speedup",
            "bit-identical",
        ],
        &rows,
    );
    println!("\nExpected shape: ≥ 2x on ≥ 4 physical cores (near-linear for fp32;");
    println!("the BFP engine is quantization-bound and scales slightly sublinearly).");
    println!(
        "Host parallelism here: {:?}.",
        std::thread::available_parallelism()
    );

    let mut c = Criterion::default().sample_size(10).configure_from_args();
    let parallel_bfp = ParallelGemm::new(serial_bfp, config);
    c.bench_function("parallel/serial_bfp_256", |bch| {
        bch.iter(|| serial_bfp.gemm(black_box(&a), black_box(&b)).unwrap())
    });
    c.bench_function("parallel/tiled_bfp_256", |bch| {
        bch.iter(|| parallel_bfp.gemm(black_box(&a), black_box(&b)).unwrap())
    });
    c.bench_function("parallel/infer_batch_16", |bch| {
        bch.iter(|| mirage.infer_batch(black_box(&batch), &weight).unwrap())
    });
    c.final_summary();
}
