//! BFP configuration.

use crate::{BfpError, Result};
use std::fmt;

/// How mantissae are reduced to `bm` bits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum RoundingMode {
    /// Truncate the LSBs toward zero — the paper's hardware behaviour
    /// ("the LSBs of the mantissae are then truncated", §III step 2).
    #[default]
    Truncate,
    /// Round to nearest (ties away from zero). Cheaper-than-stochastic
    /// accuracy improvement; kept for ablation studies.
    RoundNearest,
}

/// A BFP operating point: `bm` mantissa bits and group size `g`.
///
/// The paper's sensitivity analysis (Fig. 5) selects `bm = 4`, `g = 16`
/// as the smallest configuration that trains to FP32-comparable accuracy
/// at the lowest energy per MAC.
///
/// ```
/// use mirage_bfp::BfpConfig;
///
/// let cfg = BfpConfig::mirage_default();
/// assert_eq!((cfg.mantissa_bits(), cfg.group_size()), (4, 16));
/// assert_eq!(cfg.dot_product_bits(), 13); // Eq. 13: 2*(4+1) + log2(16) - 1
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct BfpConfig {
    bm: u32,
    g: usize,
    rounding: RoundingMode,
}

impl BfpConfig {
    /// Creates a configuration with the default [`RoundingMode::Truncate`].
    ///
    /// # Errors
    ///
    /// - [`BfpError::InvalidMantissaBits`] unless `1 <= bm <= 23` (an f32
    ///   has 23 explicit mantissa bits).
    /// - [`BfpError::InvalidGroupSize`] if `g == 0`.
    pub fn new(bm: u32, g: usize) -> Result<Self> {
        if !(1..=23).contains(&bm) {
            return Err(BfpError::InvalidMantissaBits(bm));
        }
        if g == 0 {
            return Err(BfpError::InvalidGroupSize(g));
        }
        Ok(BfpConfig {
            bm,
            g,
            rounding: RoundingMode::default(),
        })
    }

    /// The paper's chosen operating point: `bm = 4`, `g = 16`.
    pub fn mirage_default() -> Self {
        BfpConfig::new(4, 16).expect("static configuration is valid")
    }

    /// Returns a copy using the given rounding mode.
    pub fn with_rounding(mut self, rounding: RoundingMode) -> Self {
        self.rounding = rounding;
        self
    }

    /// Mantissa bits `bm` (excluding sign).
    pub fn mantissa_bits(self) -> u32 {
        self.bm
    }

    /// Group size `g` — the dot-product length the hardware executes.
    pub fn group_size(self) -> usize {
        self.g
    }

    /// The rounding mode used during quantization.
    pub fn rounding(self) -> RoundingMode {
        self.rounding
    }

    /// Largest representable mantissa magnitude, `2^bm - 1`.
    pub fn max_mantissa(self) -> i64 {
        (1i64 << self.bm) - 1
    }

    /// Bits of information in a `g`-long dot product of two BFP groups:
    /// `b_out = 2*(bm + 1) + log2(g) - 1` (paper Eq. 13, with
    /// `b_in = b_w = bm + 1`).
    pub fn dot_product_bits(self) -> u32 {
        2 * (self.bm + 1) + (self.g as f64).log2().ceil() as u32 - 1
    }

    /// Worst-case dot-product magnitude: `g * (2^bm - 1)^2`.
    ///
    /// An RNS dynamic range `M` must satisfy `ψ >= this` for lossless
    /// accumulation (the concrete form of Eq. 13).
    pub fn max_dot_magnitude(self) -> u128 {
        (self.g as u128) * (self.max_mantissa() as u128).pow(2)
    }
}

impl Default for BfpConfig {
    fn default() -> Self {
        BfpConfig::mirage_default()
    }
}

impl fmt::Display for BfpConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "BFP(bm={}, g={})", self.bm, self.g)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validates_parameters() {
        assert!(BfpConfig::new(0, 16).is_err());
        assert!(BfpConfig::new(24, 16).is_err());
        assert!(BfpConfig::new(4, 0).is_err());
        assert!(BfpConfig::new(23, 1).is_ok());
    }

    #[test]
    fn mirage_default_is_paper_operating_point() {
        let cfg = BfpConfig::mirage_default();
        assert_eq!(cfg.mantissa_bits(), 4);
        assert_eq!(cfg.group_size(), 16);
        assert_eq!(cfg.rounding(), RoundingMode::Truncate);
    }

    #[test]
    fn dot_product_bits_matches_eq13() {
        // bm=4, g=16: 2*(4+1) + log2(16) - 1 = 13.
        assert_eq!(BfpConfig::new(4, 16).unwrap().dot_product_bits(), 13);
        assert_eq!(BfpConfig::new(4, 32).unwrap().dot_product_bits(), 14);
        assert_eq!(BfpConfig::new(3, 16).unwrap().dot_product_bits(), 11);
        assert_eq!(BfpConfig::new(5, 64).unwrap().dot_product_bits(), 17);
    }

    #[test]
    fn max_dot_magnitude() {
        let cfg = BfpConfig::new(4, 16).unwrap();
        assert_eq!(cfg.max_mantissa(), 15);
        assert_eq!(cfg.max_dot_magnitude(), 16 * 225);
    }

    #[test]
    fn rounding_builder() {
        let cfg = BfpConfig::mirage_default().with_rounding(RoundingMode::RoundNearest);
        assert_eq!(cfg.rounding(), RoundingMode::RoundNearest);
    }

    #[test]
    fn display() {
        assert_eq!(BfpConfig::mirage_default().to_string(), "BFP(bm=4, g=16)");
    }
}
