//! Seeded serving module (path-matched to the real
//! `crates/nn/src/compile.rs` rule scope): every remaining rule is
//! violated at least once, so the workspace-level run goes red on all
//! five. Never compiled — scanned by `mirage-lint` only.

// mirage-lint: region(int_kernel)
/// An "integer" kernel that leaks floats: return type, casts, literal.
pub fn leaky_dot(a: &[i32]) -> f64 {
    let mut acc = 0.0;
    for &x in a {
        acc += x as f64;
    }
    acc * 1.5
}
// mirage-lint: end_region(int_kernel)

// mirage-lint: no_alloc
/// A hot path that allocates.
pub fn hot_path(xs: &[u32]) -> Vec<u32> {
    xs.to_vec()
}

/// A serving entry that can panic.
pub fn serve(x: Option<u32>) -> u32 {
    x.unwrap()
}

/// An engine overriding `prepare` without the prepared surface.
pub struct HalfEngine;

impl GemmEngine for HalfEngine {
    fn prepare(&self, b: &Tensor) -> Result<PreparedRhs> {
        prepare_impl(b)
    }
}
