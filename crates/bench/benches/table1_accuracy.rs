//! Table I: validation accuracy of Mirage vs other data formats.
//!
//! Substitution: the paper's ImageNet/VOC/IWSLT runs are replaced by
//! the standard substitute workload trained with *identical* per-format
//! GEMM arithmetic in forward and backward passes (DESIGN.md §3).

use criterion::Criterion;
use mirage_bench::experiments::{table1_accuracies, train_mlp_accuracy};
use mirage_bench::print_table;
use mirage_bfp::BfpConfig;
use mirage_nn::Engines;
use mirage_tensor::engines::BfpEngine;
use std::hint::black_box;

fn main() {
    let epochs = 120;
    let accs = table1_accuracies(epochs);
    let fp32 = accs
        .iter()
        .find(|r| r.0 == "FP32")
        .map(|r| r.1)
        .unwrap_or(0.0);
    let rows: Vec<Vec<String>> = accs
        .iter()
        .map(|&(name, acc)| {
            vec![
                name.to_string(),
                format!("{:.1}", acc * 100.0),
                format!("{:+.1}", (acc - fp32) * 100.0),
            ]
        })
        .collect();
    print_table(
        "Table I — validation accuracy per data format (substitute workload)",
        &["format", "acc (%)", "vs FP32 (pp)"],
        &rows,
    );
    println!("\nPaper shape: Mirage, bfloat16, INT12, HFP8 and FMAC all track");
    println!("FP32 closely; INT8 degrades (2-5 pp on the paper's DNNs).");

    let mut c = Criterion::default().sample_size(10).configure_from_args();
    let engines = Engines::uniform(BfpEngine::new(BfpConfig::mirage_default()));
    c.bench_function("table1/train_epochs5_mirage", |b| {
        b.iter(|| train_mlp_accuracy(black_box(&engines), 5))
    });
    c.final_summary();
}
