use std::error::Error;
use std::fmt;

/// Errors produced by BFP configuration and quantization.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum BfpError {
    /// Mantissa bit-width outside the supported range.
    InvalidMantissaBits(u32),
    /// Group size must be at least 1.
    InvalidGroupSize(usize),
    /// A non-finite value (NaN or infinity) was quantized.
    NonFinite,
    /// Two blocks with different configurations were combined.
    ConfigMismatch,
    /// Vector length mismatch in a dot product.
    LengthMismatch {
        /// Left operand length.
        left: usize,
        /// Right operand length.
        right: usize,
    },
}

impl fmt::Display for BfpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BfpError::InvalidMantissaBits(b) => {
                write!(f, "mantissa bits {b} outside supported range 1..=23")
            }
            BfpError::InvalidGroupSize(g) => write!(f, "group size {g} must be at least 1"),
            BfpError::NonFinite => write!(f, "cannot quantize NaN or infinite values"),
            BfpError::ConfigMismatch => write!(f, "blocks use different BFP configurations"),
            BfpError::LengthMismatch { left, right } => {
                write!(f, "vector length mismatch: {left} vs {right}")
            }
        }
    }
}

impl Error for BfpError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_follow_conventions() {
        for e in [
            BfpError::InvalidMantissaBits(0),
            BfpError::InvalidGroupSize(0),
            BfpError::NonFinite,
            BfpError::ConfigMismatch,
            BfpError::LengthMismatch { left: 1, right: 2 },
        ] {
            let s = e.to_string();
            assert!(!s.is_empty() && !s.ends_with('.'));
        }
    }
}
