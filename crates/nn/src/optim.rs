//! Optimizers — always operating on FP32 master weights (paper Eq. 4,
//! §V-A: "we store the weights in FP32 ... and perform the weight updates
//! in FP32").

use crate::network::{Param, Sequential};
use mirage_tensor::Tensor;

/// An optimizer stepping a [`Sequential`] network's parameters.
pub trait Optimizer {
    /// Applies one update step using the accumulated gradients, then the
    /// caller typically zeroes gradients.
    fn step(&mut self, net: &mut Sequential);

    /// The current learning rate.
    fn learning_rate(&self) -> f32;

    /// Overrides the learning rate (for schedules, e.g. the paper's
    /// ÷10-every-20-epochs CNN schedule).
    fn set_learning_rate(&mut self, lr: f32);
}

/// Stochastic gradient descent with classical momentum.
///
/// The paper trains its CNNs and YOLO with SGD (§VI-B).
#[derive(Debug)]
pub struct Sgd {
    lr: f32,
    momentum: f32,
    weight_decay: f32,
    velocity: Vec<Tensor>,
}

impl Sgd {
    /// Plain SGD.
    pub fn new(lr: f32) -> Self {
        Sgd {
            lr,
            momentum: 0.0,
            weight_decay: 0.0,
            velocity: Vec::new(),
        }
    }

    /// SGD with momentum.
    pub fn with_momentum(lr: f32, momentum: f32) -> Self {
        Sgd {
            lr,
            momentum,
            weight_decay: 0.0,
            velocity: Vec::new(),
        }
    }

    /// Adds L2 weight decay.
    pub fn with_weight_decay(mut self, wd: f32) -> Self {
        self.weight_decay = wd;
        self
    }
}

impl Optimizer for Sgd {
    fn step(&mut self, net: &mut Sequential) {
        let mut idx = 0usize;
        let (lr, mu, wd) = (self.lr, self.momentum, self.weight_decay);
        let velocity = &mut self.velocity;
        net.visit_params(&mut |p: &mut Param| {
            if velocity.len() <= idx {
                velocity.push(Tensor::zeros(p.value.shape()));
            }
            let v = &mut velocity[idx];
            for ((vi, wi), &gi) in v
                .data_mut()
                .iter_mut()
                .zip(p.value.data_mut().iter_mut())
                .zip(p.grad.data())
            {
                let g = gi + wd * *wi;
                *vi = mu * *vi + g;
                *wi -= lr * *vi;
            }
            idx += 1;
        });
    }

    fn learning_rate(&self) -> f32 {
        self.lr
    }

    fn set_learning_rate(&mut self, lr: f32) {
        self.lr = lr;
    }
}

/// Adam (Kingma & Ba) — used by the paper for the Transformer (§VI-B:
/// lr = 1e-4, β1 = 0.9, β2 = 0.999).
#[derive(Debug)]
pub struct Adam {
    lr: f32,
    beta1: f32,
    beta2: f32,
    eps: f32,
    t: u64,
    m: Vec<Tensor>,
    v: Vec<Tensor>,
}

impl Adam {
    /// Adam with the paper's Transformer hyper-parameters except the
    /// learning rate, which the caller chooses.
    pub fn new(lr: f32) -> Self {
        Adam {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            t: 0,
            m: Vec::new(),
            v: Vec::new(),
        }
    }
}

impl Optimizer for Adam {
    fn step(&mut self, net: &mut Sequential) {
        self.t += 1;
        let (lr, b1, b2, eps, t) = (self.lr, self.beta1, self.beta2, self.eps, self.t);
        let bc1 = 1.0 - b1.powi(t as i32);
        let bc2 = 1.0 - b2.powi(t as i32);
        let mut idx = 0usize;
        let (ms, vs) = (&mut self.m, &mut self.v);
        net.visit_params(&mut |p: &mut Param| {
            if ms.len() <= idx {
                ms.push(Tensor::zeros(p.value.shape()));
                vs.push(Tensor::zeros(p.value.shape()));
            }
            let m = &mut ms[idx];
            let v = &mut vs[idx];
            for (((mi, vi), wi), &gi) in m
                .data_mut()
                .iter_mut()
                .zip(v.data_mut().iter_mut())
                .zip(p.value.data_mut().iter_mut())
                .zip(p.grad.data())
            {
                *mi = b1 * *mi + (1.0 - b1) * gi;
                *vi = b2 * *vi + (1.0 - b2) * gi * gi;
                let mhat = *mi / bc1;
                let vhat = *vi / bc2;
                *wi -= lr * mhat / (vhat.sqrt() + eps);
            }
            idx += 1;
        });
    }

    fn learning_rate(&self) -> f32 {
        self.lr
    }

    fn set_learning_rate(&mut self, lr: f32) {
        self.lr = lr;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::Dense;
    use crate::Engines;
    use mirage_tensor::engines::ExactEngine;
    use mirage_tensor::Tensor;
    use rand::SeedableRng;

    /// One-parameter quadratic: loss = (w - 3)^2, minimized at w = 3.
    fn quadratic_net(w0: f32) -> Sequential {
        let mut net = Sequential::new();
        net.push(Dense::from_weights(
            Tensor::from_vec(vec![w0], &[1, 1]).unwrap(),
            Tensor::zeros(&[1]),
        ));
        net
    }

    fn quadratic_step(net: &mut Sequential, opt: &mut dyn Optimizer) -> f32 {
        let engines = Engines::uniform(ExactEngine);
        net.zero_grads();
        let x = Tensor::ones(&[1, 1]);
        let y = net.forward(&x, &engines).unwrap(); // y = w
        let w = y.data()[0];
        // d loss / d y = 2 (w - 3).
        let d = Tensor::from_vec(vec![2.0 * (w - 3.0)], &[1, 1]).unwrap();
        net.backward(&d, &engines).unwrap();
        opt.step(net);
        (w - 3.0).powi(2)
    }

    #[test]
    fn sgd_converges_on_quadratic() {
        let mut net = quadratic_net(0.0);
        let mut opt = Sgd::new(0.1);
        let mut last = f32::INFINITY;
        for _ in 0..50 {
            last = quadratic_step(&mut net, &mut opt);
        }
        assert!(last < 1e-6, "loss = {last}");
    }

    #[test]
    fn momentum_accelerates() {
        let run = |mut opt: Sgd| {
            let mut net = quadratic_net(0.0);
            let mut loss = f32::INFINITY;
            for _ in 0..30 {
                loss = quadratic_step(&mut net, &mut opt);
            }
            loss
        };
        let plain = run(Sgd::new(0.01));
        let momentum = run(Sgd::with_momentum(0.01, 0.5));
        assert!(momentum < plain, "{momentum} vs {plain}");
    }

    #[test]
    fn adam_converges_on_quadratic() {
        let mut net = quadratic_net(10.0);
        let mut opt = Adam::new(0.5);
        let mut last = f32::INFINITY;
        for _ in 0..200 {
            last = quadratic_step(&mut net, &mut opt);
        }
        assert!(last < 1e-3, "loss = {last}");
    }

    #[test]
    fn weight_decay_shrinks_weights() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(80);
        let mut net = Sequential::new();
        net.push(Dense::new(4, 4, &mut rng));
        let mut before = 0.0;
        net.visit_params(&mut |p| before += p.value.max_abs());
        // Pure decay: gradients are zero.
        let mut opt = Sgd::new(0.1).with_weight_decay(0.5);
        for _ in 0..10 {
            net.zero_grads();
            opt.step(&mut net);
        }
        let mut after = 0.0;
        net.visit_params(&mut |p| after += p.value.max_abs());
        assert!(after < before);
    }

    #[test]
    fn learning_rate_schedule_api() {
        let mut opt = Sgd::new(0.01);
        assert_eq!(opt.learning_rate(), 0.01);
        opt.set_learning_rate(0.001);
        assert_eq!(opt.learning_rate(), 0.001);
    }
}
