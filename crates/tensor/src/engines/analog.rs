//! Conventional analog-core GEMM with lossy ADC read-out.

use super::{gemm_dims, GemmEngine};
use crate::quant::{int_scale, quantize_int};
use crate::{Result, Tensor};

/// A *conventional* (non-RNS) analog MVM core: `b_dac`-bit operand
/// encoding, `h`-long analog dot products, and a `b_adc`-bit ADC applied
/// to **every partial output without rescaling** — the information-loss
/// mechanism described in paper §II-C that makes naive analog training
/// fail and motivates Mirage.
///
/// A full dot product of `b_dac`-bit operands over `h` elements carries
/// `b_out = 2*b_dac + log2(h) - 1` bits; whenever `b_adc < b_out` the ADC
/// floor truncates `b_out - b_adc` bits of every tile's partial sum.
///
/// ```
/// use mirage_tensor::{Tensor, GemmEngine};
/// use mirage_tensor::engines::{AnalogFxpEngine, ExactEngine};
///
/// let lossy = AnalogFxpEngine::new(8, 8, 128); // 8-bit ADC, h = 128
/// assert_eq!(lossy.information_loss_bits(), 2 * 8 + 7 - 1 - 8);
/// # Ok::<(), mirage_tensor::TensorError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AnalogFxpEngine {
    b_dac: u32,
    b_adc: u32,
    h: usize,
}

impl AnalogFxpEngine {
    /// Creates an engine with DAC precision `b_dac`, ADC precision
    /// `b_adc`, and analog vector (tile) length `h`.
    ///
    /// # Panics
    ///
    /// Panics if `h == 0` or either precision is outside `2..=16`.
    pub fn new(b_dac: u32, b_adc: u32, h: usize) -> Self {
        assert!(h > 0, "tile length must be positive");
        assert!((2..=16).contains(&b_dac) && (2..=16).contains(&b_adc));
        AnalogFxpEngine { b_dac, b_adc, h }
    }

    /// DAC (operand) precision in bits.
    pub fn b_dac(&self) -> u32 {
        self.b_dac
    }

    /// ADC (read-out) precision in bits.
    pub fn b_adc(&self) -> u32 {
        self.b_adc
    }

    /// Analog dot-product length `h` (the photonic array width).
    pub fn h(&self) -> usize {
        self.h
    }

    /// Bits of information lost per partial output:
    /// `max(0, b_out - b_adc)` with `b_out = 2*b_dac + log2(h) - 1`.
    pub fn information_loss_bits(&self) -> u32 {
        let b_out = 2 * self.b_dac + (self.h as f64).log2().ceil() as u32 - 1;
        b_out.saturating_sub(self.b_adc)
    }
}

impl GemmEngine for AnalogFxpEngine {
    fn name(&self) -> &'static str {
        "analog-fxp"
    }

    /// `false`: the DAC scales are derived from the **whole-matrix**
    /// `max_abs`, so slicing the operands into row/column tiles would
    /// change the quantization grid. [`crate::parallel::ParallelGemm`]
    /// therefore runs this engine on its serial path.
    fn tile_invariant(&self) -> bool {
        false
    }

    fn gemm(&self, a: &Tensor, b: &Tensor) -> Result<Tensor> {
        let (m, k, n) = gemm_dims(a, b)?;

        // Operand quantization before the DACs (per-matrix dynamic scale,
        // as done digitally before a layer — §II-C).
        let a_scale = int_scale(a.max_abs(), self.b_dac);
        let b_scale = int_scale(b.max_abs(), self.b_dac);
        let qa: Vec<i32> = a
            .data()
            .iter()
            .map(|&v| quantize_int(v, a_scale, self.b_dac))
            .collect();
        let qb: Vec<i32> = b
            .data()
            .iter()
            .map(|&v| quantize_int(v, b_scale, self.b_dac))
            .collect();

        // The ADC's fixed full scale covers the worst-case tile output;
        // with only b_adc levels across that range, each partial output is
        // floored to a coarse grid — no per-tile rescaling exists in the
        // analog domain.
        let max_code = f64::from((1i64 << (self.b_dac - 1)) as i32 - 1);
        let full_scale = max_code * max_code * self.h as f64;
        let adc_levels = f64::from((1i64 << (self.b_adc - 1)) as i32 - 1);
        let lsb = full_scale / adc_levels;

        let mut out = vec![0.0f32; m * n];
        for i in 0..m {
            for j in 0..n {
                let mut acc = 0.0f64;
                // Tile the dot product into h-long analog MVMs.
                for tile_start in (0..k).step_by(self.h) {
                    let tile_end = (tile_start + self.h).min(k);
                    let mut partial: i64 = 0;
                    for p in tile_start..tile_end {
                        partial += i64::from(qa[i * k + p]) * i64::from(qb[p * n + j]);
                    }
                    // ADC read-out: round to the coarse LSB grid.
                    let read = (partial as f64 / lsb).round() * lsb;
                    acc += read;
                }
                out[i * n + j] = (acc * f64::from(a_scale) * f64::from(b_scale)) as f32;
            }
        }
        Tensor::from_vec(out, &[m, n])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engines::ExactEngine;
    use rand::SeedableRng;

    fn pair(seed: u64, m: usize, k: usize, n: usize) -> (Tensor, Tensor) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        (
            Tensor::randn(&[m, k], 1.0, &mut rng),
            Tensor::randn(&[k, n], 1.0, &mut rng),
        )
    }

    fn rel_err(e: &dyn GemmEngine, a: &Tensor, b: &Tensor) -> f32 {
        let exact = ExactEngine.gemm(a, b).unwrap();
        e.gemm(a, b).unwrap().sub(&exact).unwrap().max_abs() / exact.max_abs()
    }

    #[test]
    fn loss_bits_formula() {
        // 8-bit DACs, h = 128: b_out = 16 + 7 - 1 = 22; 8-bit ADC loses 14.
        assert_eq!(AnalogFxpEngine::new(8, 8, 128).information_loss_bits(), 14);
        // Full-precision ADC: no loss.
        assert_eq!(AnalogFxpEngine::new(4, 16, 16).information_loss_bits(), 0);
    }

    #[test]
    fn error_grows_with_h() {
        // The paper's §II-C claim: larger analog tiles hurt more when the
        // ADC precision is fixed.
        let (a, b) = pair(50, 8, 256, 8);
        let e16 = rel_err(&AnalogFxpEngine::new(8, 8, 16), &a, &b);
        let e128 = rel_err(&AnalogFxpEngine::new(8, 8, 128), &a, &b);
        assert!(e128 > e16, "e128 = {e128}, e16 = {e16}");
    }

    #[test]
    fn error_shrinks_with_adc_bits() {
        let (a, b) = pair(51, 8, 128, 8);
        let e8 = rel_err(&AnalogFxpEngine::new(8, 8, 64), &a, &b);
        let e14 = rel_err(&AnalogFxpEngine::new(8, 14, 64), &a, &b);
        assert!(e14 < e8, "e14 = {e14}, e8 = {e8}");
    }

    #[test]
    fn lossless_when_adc_wide_enough() {
        // b_adc >= b_out: quantization only from the DAC side.
        let (a, b) = pair(52, 4, 8, 4);
        let wide = AnalogFxpEngine::new(4, 16, 8);
        assert_eq!(wide.information_loss_bits(), 0);
        let err = rel_err(&wide, &a, &b);
        // Residual error is DAC quantization only — small but nonzero.
        assert!(err < 0.2, "err = {err}");
    }

    #[test]
    #[should_panic(expected = "tile length must be positive")]
    fn zero_tile_panics() {
        AnalogFxpEngine::new(8, 8, 0);
    }
}
