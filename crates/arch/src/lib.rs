//! # mirage-arch
//!
//! Architecture-level performance, power and area models for the Mirage
//! accelerator and its systolic-array baselines (paper §V-B, §VI).
//!
//! - [`converters`] — Murmann-style ADC/DAC energy model (Fig. 1(b)) and
//!   the paper's concrete converter specs.
//! - [`config`] — the Mirage accelerator configuration (8 RNS-MMVMUs of
//!   3 × 16×32 MMVMUs, 10 GHz photonic / 1 GHz digital clocks).
//! - [`workload`] — GEMM-level training workloads (one forward + two
//!   backward GEMMs per layer, Eqs. 1–3).
//! - [`dataflow`] — DF1/DF2/DF3 and the OPT1/OPT2 schedulers (Fig. 7).
//! - [`latency`] — tile-level latency models for Mirage and systolic
//!   arrays.
//! - [`utilization`] — spatial-utilization sweeps (Fig. 6).
//! - [`energy`] — energy per MAC vs `(bm, g)` (Fig. 5(b), Table II).
//! - [`breakdown`] — peak-power and area breakdowns (Fig. 9).
//! - [`compare`] — iso-energy and iso-area comparisons (Fig. 8).
//! - [`inference`] — inference throughput comparison (Table III).
//! - [`macunit`] — MAC-unit-level constants (Table II).
//! - [`sram`] — the interleaved SRAM subsystem (§IV-C).
//! - [`sharding`] — per-shard latency/energy for tensor/pipeline
//!   placements across multiple Mirage instances.

#![forbid(unsafe_code)]
#![deny(missing_docs)]
#![deny(unused_must_use)]

pub mod breakdown;
pub mod compare;
pub mod config;
pub mod converters;
pub mod dataflow;
pub mod energy;
pub mod inference;
pub mod latency;
pub mod macunit;
pub mod sharding;
pub mod sram;
pub mod utilization;
pub mod workload;

pub use config::MirageConfig;
pub use dataflow::{Dataflow, DataflowPolicy};
pub use macunit::MacUnitSpec;
pub use workload::{GemmShape, TrainingGemm, Workload, WorkloadLayer};
