//! Network layers.
//!
//! Every GEMM-bearing layer ([`Dense`], [`Conv2d`]) routes its products
//! through the configured [`Engines`], in both directions — the paper's
//! accuracy-model contract (§V-A).

use crate::compile::{
    Conv2dStep, DenseStep, FlattenStep, GlobalAvgPool2dStep, IdentityStep, MaxPool2dStep, PlanStep,
    ReluStep,
};
use crate::engines::Engines;
use crate::network::Param;
use crate::{NnError, Result};
use mirage_tensor::conv::{
    conv2d_backward, conv2d_forward, maxpool2d_backward, maxpool2d_forward, Conv2dGeometry,
};
use mirage_tensor::Tensor;

/// A differentiable layer.
///
/// Layers cache whatever they need during [`Layer::forward`] and consume
/// it in [`Layer::backward`]; parameter gradients accumulate into
/// [`Param::grad`].
pub trait Layer: Send {
    /// Short name for debugging.
    fn name(&self) -> &'static str;

    /// Forward pass.
    ///
    /// # Errors
    ///
    /// Propagates tensor/engine errors.
    fn forward(&mut self, x: &Tensor, engines: &Engines) -> Result<Tensor>;

    /// Backward pass: upstream gradient in, input gradient out.
    ///
    /// # Errors
    ///
    /// Propagates tensor/engine errors;
    /// [`NnError::BackwardBeforeForward`] without a prior forward.
    fn backward(&mut self, d_out: &Tensor, engines: &Engines) -> Result<Tensor>;

    /// Visits trainable parameters (default: none).
    fn visit_params(&mut self, _f: &mut dyn FnMut(&mut Param)) {}

    /// Freezes the layer into an immutable inference [`PlanStep`]: any
    /// GEMM weight is transposed and prepared ([`Engines::prepare_forward`])
    /// exactly once, and the step must be **bit-identical** to this
    /// layer's [`Layer::forward`] on every engine — compilation is a
    /// caching transformation, never a numerical one.
    ///
    /// The default rejects compilation so an unknown layer can never be
    /// silently served through a degraded path; custom inference-safe
    /// layers either build a real step or explicitly wrap their eager
    /// pass with [`crate::compile::EagerStep`].
    ///
    /// # Errors
    ///
    /// Returns [`NnError::NotCompilable`] when the layer has no
    /// inference form (the default, and training-only behaviour like an
    /// active `Dropout`); propagates tensor/engine errors from weight
    /// preparation.
    fn compile(&self, engines: &Engines) -> Result<Box<dyn PlanStep>> {
        let _ = engines;
        Err(NnError::NotCompilable {
            layer: self.name().to_string(),
            reason: "this layer has no compiled inference form; implement \
                     Layer::compile (or wrap the eager path in \
                     mirage_nn::compile::EagerStep if the layer is \
                     inference-safe)"
                .to_string(),
        })
    }
}

/// Adds `bias` to every `bias.len()`-wide row of `out` — the bias loop
/// shared by the eager [`Dense`] forward and its compiled plan step, so
/// both paths move bits identically by construction.
pub(crate) fn add_row_bias(out: &mut [f32], bias: &[f32]) {
    let out_dim = bias.len();
    let rows = out.len() / out_dim.max(1);
    for r in 0..rows {
        for c in 0..out_dim {
            out[r * out_dim + c] += bias[c];
        }
    }
}

/// Fully connected layer: `y = x · Wᵀ + b`.
#[derive(Debug)]
pub struct Dense {
    weight: Param,
    bias: Param,
    cached_input: Option<Tensor>,
}

impl Dense {
    /// He-initialized dense layer mapping `in_dim -> out_dim`.
    pub fn new(in_dim: usize, out_dim: usize, rng: &mut impl rand::RngExt) -> Self {
        let std = (2.0 / in_dim as f32).sqrt();
        Dense {
            weight: Param::new(Tensor::randn(&[out_dim, in_dim], std, rng)),
            bias: Param::new(Tensor::zeros(&[out_dim])),
            cached_input: None,
        }
    }

    /// Builds a dense layer from explicit weights (for tests).
    pub fn from_weights(weight: Tensor, bias: Tensor) -> Self {
        Dense {
            weight: Param::new(weight),
            bias: Param::new(bias),
            cached_input: None,
        }
    }

    /// The weight matrix `[out_dim, in_dim]`.
    pub fn weight(&self) -> &Tensor {
        &self.weight.value
    }
}

impl Layer for Dense {
    fn name(&self) -> &'static str {
        "dense"
    }

    fn forward(&mut self, x: &Tensor, engines: &Engines) -> Result<Tensor> {
        let wt = self.weight.value.transpose2d()?;
        let mut y = engines.forward().gemm(x, &wt)?;
        add_row_bias(y.data_mut(), self.bias.value.data());
        self.cached_input = Some(x.clone());
        Ok(y)
    }

    fn backward(&mut self, d_out: &Tensor, engines: &Engines) -> Result<Tensor> {
        let x = self
            .cached_input
            .as_ref()
            .ok_or(NnError::BackwardBeforeForward)?;
        // ∆W = ∆Yᵀ · X (Eq. 3), ∆X = ∆Y · W (Eq. 2).
        let dw = engines.backward().gemm(&d_out.transpose2d()?, x)?;
        let dx = engines.backward().gemm(d_out, &self.weight.value)?;
        self.weight.grad = self.weight.grad.add(&dw)?;
        // Bias gradient: column sums of ∆Y.
        let out_dim = self.bias.value.len();
        let rows = d_out.len() / out_dim.max(1);
        for r in 0..rows {
            for c in 0..out_dim {
                self.bias.grad.data_mut()[c] += d_out.data()[r * out_dim + c];
            }
        }
        Ok(dx)
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        f(&mut self.weight);
        f(&mut self.bias);
    }

    /// Transposes and prepares the weight once; serving requests run
    /// only activation-side quantization.
    fn compile(&self, engines: &Engines) -> Result<Box<dyn PlanStep>> {
        let wt = self.weight.value.transpose2d()?;
        let prepared = engines.prepare_forward(&wt)?;
        Ok(Box::new(DenseStep::new(
            engines.forward_engine(),
            prepared,
            self.bias.value.data().to_vec(),
        )))
    }
}

/// 2-D convolution layer (square kernel, no bias — batch-norm-free nets
/// fold any bias into the following dense layer in our small models).
#[derive(Debug)]
pub struct Conv2d {
    weight: Param,
    geometry: Conv2dGeometry,
    cached_input: Option<Tensor>,
}

impl Conv2d {
    /// He-initialized convolution.
    pub fn new(geometry: Conv2dGeometry, rng: &mut impl rand::RngExt) -> Self {
        let fan_in = geometry.patch_len();
        let std = (2.0 / fan_in as f32).sqrt();
        let weight = Tensor::randn(
            &[
                geometry.out_channels,
                geometry.in_channels,
                geometry.kernel,
                geometry.kernel,
            ],
            std,
            rng,
        );
        Conv2d {
            weight: Param::new(weight),
            geometry,
            cached_input: None,
        }
    }

    /// The convolution geometry.
    pub fn geometry(&self) -> Conv2dGeometry {
        self.geometry
    }
}

impl Layer for Conv2d {
    fn name(&self) -> &'static str {
        "conv2d"
    }

    fn forward(&mut self, x: &Tensor, engines: &Engines) -> Result<Tensor> {
        let y = conv2d_forward(x, &self.weight.value, &self.geometry, engines.forward())?;
        self.cached_input = Some(x.clone());
        Ok(y)
    }

    fn backward(&mut self, d_out: &Tensor, engines: &Engines) -> Result<Tensor> {
        let x = self
            .cached_input
            .as_ref()
            .ok_or(NnError::BackwardBeforeForward)?;
        let (dx, dw) = conv2d_backward(
            x,
            &self.weight.value,
            d_out,
            &self.geometry,
            engines.backward(),
        )?;
        self.weight.grad = self.weight.grad.add(&dw)?;
        Ok(dx)
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        f(&mut self.weight);
    }

    /// Reshapes + transposes the kernel into the im2col weight matrix
    /// and prepares it once.
    fn compile(&self, engines: &Engines) -> Result<Box<dyn PlanStep>> {
        let wmat = self
            .weight
            .value
            .reshape(&[self.geometry.out_channels, self.geometry.patch_len()])?;
        let prepared = engines.prepare_forward(&wmat.transpose2d()?)?;
        Ok(Box::new(Conv2dStep::new(
            engines.forward_engine(),
            prepared,
            self.geometry,
        )))
    }
}

/// Rectified linear unit (element-wise, computed digitally in FP32 —
/// nonlinearities never enter the photonic core, Fig. 2 step 10).
#[derive(Debug, Default)]
pub struct Relu {
    mask: Option<Vec<bool>>,
}

impl Relu {
    /// Creates a ReLU layer.
    pub fn new() -> Self {
        Relu::default()
    }
}

impl Layer for Relu {
    fn name(&self) -> &'static str {
        "relu"
    }

    fn forward(&mut self, x: &Tensor, _engines: &Engines) -> Result<Tensor> {
        self.mask = Some(x.data().iter().map(|&v| v > 0.0).collect());
        Ok(x.map(|v| v.max(0.0)))
    }

    fn backward(&mut self, d_out: &Tensor, _engines: &Engines) -> Result<Tensor> {
        let mask = self.mask.as_ref().ok_or(NnError::BackwardBeforeForward)?;
        let data = d_out
            .data()
            .iter()
            .zip(mask)
            .map(|(&g, &m)| if m { g } else { 0.0 })
            .collect();
        Ok(Tensor::from_vec(data, d_out.shape())?)
    }

    fn compile(&self, _engines: &Engines) -> Result<Box<dyn PlanStep>> {
        Ok(Box::new(ReluStep))
    }
}

/// 2-D max pooling.
#[derive(Debug)]
pub struct MaxPool2d {
    kernel: usize,
    stride: usize,
    cache: Option<(Vec<usize>, Vec<usize>)>, // (argmax, input shape)
}

impl MaxPool2d {
    /// Creates a pooling layer with the given window and stride.
    pub fn new(kernel: usize, stride: usize) -> Self {
        MaxPool2d {
            kernel,
            stride,
            cache: None,
        }
    }
}

impl Layer for MaxPool2d {
    fn name(&self) -> &'static str {
        "maxpool2d"
    }

    fn forward(&mut self, x: &Tensor, _engines: &Engines) -> Result<Tensor> {
        let (y, arg) = maxpool2d_forward(x, self.kernel, self.stride)?;
        self.cache = Some((arg, x.shape().to_vec()));
        Ok(y)
    }

    fn backward(&mut self, d_out: &Tensor, _engines: &Engines) -> Result<Tensor> {
        let (arg, shape) = self.cache.as_ref().ok_or(NnError::BackwardBeforeForward)?;
        Ok(maxpool2d_backward(d_out, arg, shape)?)
    }

    fn compile(&self, _engines: &Engines) -> Result<Box<dyn PlanStep>> {
        Ok(Box::new(MaxPool2dStep {
            kernel: self.kernel,
            stride: self.stride,
        }))
    }
}

/// Flattens `[b, ...]` into `[b, prod(...)]`.
#[derive(Debug, Default)]
pub struct Flatten {
    cached_shape: Option<Vec<usize>>,
}

impl Flatten {
    /// Creates a flatten layer.
    pub fn new() -> Self {
        Flatten::default()
    }
}

impl Layer for Flatten {
    fn name(&self) -> &'static str {
        "flatten"
    }

    fn forward(&mut self, x: &Tensor, _engines: &Engines) -> Result<Tensor> {
        self.cached_shape = Some(x.shape().to_vec());
        let b = x.shape()[0];
        let rest: usize = x.shape()[1..].iter().product();
        Ok(x.reshape(&[b, rest])?)
    }

    fn backward(&mut self, d_out: &Tensor, _engines: &Engines) -> Result<Tensor> {
        let shape = self
            .cached_shape
            .as_ref()
            .ok_or(NnError::BackwardBeforeForward)?;
        Ok(d_out.reshape(shape)?)
    }

    fn compile(&self, _engines: &Engines) -> Result<Box<dyn PlanStep>> {
        Ok(Box::new(FlattenStep))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mirage_tensor::engines::ExactEngine;
    use rand::SeedableRng;

    fn engines() -> Engines {
        Engines::uniform(ExactEngine)
    }

    #[test]
    fn dense_forward_matches_manual() {
        let w = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]).unwrap();
        let b = Tensor::from_vec(vec![0.5, -0.5], &[2]).unwrap();
        let mut layer = Dense::from_weights(w, b);
        let x = Tensor::from_vec(vec![1.0, 1.0, 1.0], &[1, 3]).unwrap();
        let y = layer.forward(&x, &engines()).unwrap();
        assert_eq!(y.data(), &[6.5, 14.5]);
    }

    #[test]
    fn dense_gradcheck() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(70);
        let mut layer = Dense::new(3, 2, &mut rng);
        let x = Tensor::randn(&[4, 3], 1.0, &mut rng);
        let e = engines();
        let y = layer.forward(&x, &e).unwrap();
        let d_out = Tensor::ones(y.shape());
        let dx = layer.backward(&d_out, &e).unwrap();

        let eps = 1e-3;
        // Finite difference on one input coordinate.
        let loss = |layer: &mut Dense, x: &Tensor| layer.forward(x, &e).unwrap().sum();
        let mut xp = x.clone();
        *xp.at_mut(&[1, 2]) += eps;
        let num = (loss(&mut layer, &xp) - loss(&mut layer, &x)) / eps;
        assert!((num - dx.at(&[1, 2])).abs() < 1e-2);
    }

    #[test]
    fn dense_weight_gradcheck() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(71);
        let mut layer = Dense::new(3, 2, &mut rng);
        let x = Tensor::randn(&[4, 3], 1.0, &mut rng);
        let e = engines();
        let y = layer.forward(&x, &e).unwrap();
        layer.backward(&Tensor::ones(y.shape()), &e).unwrap();
        let mut grads = Vec::new();
        layer.visit_params(&mut |p| grads.push(p.grad.clone()));
        let dw = &grads[0];
        let db = &grads[1];

        let eps = 1e-3;
        let base = y.sum();
        // Perturb W[0][1].
        let mut pert = Dense::from_weights(layer.weight.value.clone(), layer.bias.value.clone());
        *pert.weight.value.at_mut(&[0, 1]) += eps;
        let num = (pert.forward(&x, &e).unwrap().sum() - base) / eps;
        assert!((num - dw.at(&[0, 1])).abs() < 1e-2);
        // Bias gradient is just the batch size here.
        assert_eq!(db.data(), &[4.0, 4.0]);
    }

    #[test]
    fn relu_masks_gradient() {
        let mut relu = Relu::new();
        let x = Tensor::from_vec(vec![-1.0, 2.0, 0.0, 3.0], &[2, 2]).unwrap();
        let y = relu.forward(&x, &engines()).unwrap();
        assert_eq!(y.data(), &[0.0, 2.0, 0.0, 3.0]);
        let d = relu.backward(&Tensor::ones(&[2, 2]), &engines()).unwrap();
        assert_eq!(d.data(), &[0.0, 1.0, 0.0, 1.0]);
    }

    #[test]
    fn backward_before_forward_errors() {
        let mut relu = Relu::new();
        assert_eq!(
            relu.backward(&Tensor::ones(&[1]), &engines()).unwrap_err(),
            NnError::BackwardBeforeForward
        );
    }

    #[test]
    fn flatten_round_trip() {
        let mut fl = Flatten::new();
        let x = Tensor::ones(&[2, 3, 4, 5]);
        let y = fl.forward(&x, &engines()).unwrap();
        assert_eq!(y.shape(), &[2, 60]);
        let d = fl.backward(&y, &engines()).unwrap();
        assert_eq!(d.shape(), &[2, 3, 4, 5]);
    }

    #[test]
    fn conv_layer_gradcheck() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(72);
        let geo = Conv2dGeometry {
            in_channels: 1,
            out_channels: 2,
            kernel: 3,
            stride: 1,
            padding: 1,
        };
        let mut conv = Conv2d::new(geo, &mut rng);
        let x = Tensor::randn(&[1, 1, 4, 4], 1.0, &mut rng);
        let e = engines();
        let y = conv.forward(&x, &e).unwrap();
        let dx = conv.backward(&Tensor::ones(y.shape()), &e).unwrap();
        assert_eq!(dx.shape(), x.shape());

        let eps = 1e-2;
        let loss = |c: &mut Conv2d, x: &Tensor| c.forward(x, &e).unwrap().sum();
        let mut xp = x.clone();
        *xp.at_mut(&[0, 0, 2, 2]) += eps;
        let num = (loss(&mut conv, &xp) - loss(&mut conv, &x)) / eps;
        assert!((num - dx.at(&[0, 0, 2, 2])).abs() < 0.05);
    }

    #[test]
    fn maxpool_layer_shapes() {
        let mut mp = MaxPool2d::new(2, 2);
        let x = Tensor::ones(&[1, 2, 4, 4]);
        let y = mp.forward(&x, &engines()).unwrap();
        assert_eq!(y.shape(), &[1, 2, 2, 2]);
        let d = mp.backward(&Tensor::ones(y.shape()), &engines()).unwrap();
        assert_eq!(d.shape(), x.shape());
        assert_eq!(d.sum(), 8.0); // one gradient unit per pooled cell
    }
}

/// Global average pooling layer: `[b, c, h, w] -> [b, c]`.
#[derive(Debug, Default)]
pub struct GlobalAvgPool2d {
    cached_shape: Option<Vec<usize>>,
}

impl GlobalAvgPool2d {
    /// Creates the layer.
    pub fn new() -> Self {
        GlobalAvgPool2d::default()
    }
}

impl Layer for GlobalAvgPool2d {
    fn name(&self) -> &'static str {
        "global-avgpool2d"
    }

    fn forward(&mut self, x: &Tensor, _engines: &Engines) -> Result<Tensor> {
        self.cached_shape = Some(x.shape().to_vec());
        Ok(mirage_tensor::conv::global_avgpool2d(x)?)
    }

    fn backward(&mut self, d_out: &Tensor, _engines: &Engines) -> Result<Tensor> {
        let shape = self
            .cached_shape
            .as_ref()
            .ok_or(NnError::BackwardBeforeForward)?;
        Ok(mirage_tensor::conv::global_avgpool2d_backward(
            d_out, shape,
        )?)
    }

    fn compile(&self, _engines: &Engines) -> Result<Box<dyn PlanStep>> {
        Ok(Box::new(GlobalAvgPool2dStep))
    }
}

/// Inverted dropout: active during training, identity at inference.
/// The AlexNet/VGG regularizer; runs digitally like every non-GEMM op.
#[derive(Debug)]
pub struct Dropout {
    p: f32,
    training: bool,
    seed_state: u64,
    mask: Option<Vec<f32>>,
}

impl Dropout {
    /// Creates a dropout layer dropping with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics unless `0 <= p < 1`.
    pub fn new(p: f32, seed: u64) -> Self {
        assert!((0.0..1.0).contains(&p), "p must be in [0, 1)");
        Dropout {
            p,
            training: true,
            seed_state: seed | 1,
            mask: None,
        }
    }

    /// Switches training/inference behaviour.
    pub fn set_training(&mut self, training: bool) {
        self.training = training;
    }

    fn next_uniform(&mut self) -> f32 {
        // SplitMix64-style counter RNG: deterministic and Send.
        self.seed_state = self
            .seed_state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        ((self.seed_state >> 40) as f32) / ((1u64 << 24) as f32)
    }
}

impl Layer for Dropout {
    fn name(&self) -> &'static str {
        "dropout"
    }

    fn forward(&mut self, x: &Tensor, _engines: &Engines) -> Result<Tensor> {
        if !self.training || self.p == 0.0 {
            self.mask = None;
            return Ok(x.clone());
        }
        let keep = 1.0 - self.p;
        let mask: Vec<f32> = (0..x.len())
            .map(|_| {
                if self.next_uniform() < self.p {
                    0.0
                } else {
                    1.0 / keep
                }
            })
            .collect();
        let data = x.data().iter().zip(&mask).map(|(&v, &m)| v * m).collect();
        self.mask = Some(mask);
        Ok(Tensor::from_vec(data, x.shape())?)
    }

    fn backward(&mut self, d_out: &Tensor, _engines: &Engines) -> Result<Tensor> {
        match &self.mask {
            None => Ok(d_out.clone()),
            Some(mask) => {
                let data = d_out
                    .data()
                    .iter()
                    .zip(mask)
                    .map(|(&g, &m)| g * m)
                    .collect();
                Ok(Tensor::from_vec(data, d_out.shape())?)
            }
        }
    }

    /// Inference-mode dropout is the identity; an **active** dropout is
    /// training-only behaviour and refuses to compile rather than
    /// silently dropping activations (or silently becoming identity) in
    /// a serving plan.
    fn compile(&self, _engines: &Engines) -> Result<Box<dyn PlanStep>> {
        if self.training && self.p > 0.0 {
            return Err(NnError::NotCompilable {
                layer: self.name().to_string(),
                reason: format!(
                    "dropout (p = {}) is in training mode; call \
                     Dropout::set_training(false) before compiling an \
                     inference plan",
                    self.p
                ),
            });
        }
        Ok(Box::new(IdentityStep { name: self.name() }))
    }
}

#[cfg(test)]
mod extra_layer_tests {
    use super::*;
    use mirage_tensor::engines::ExactEngine;

    fn engines() -> Engines {
        Engines::uniform(ExactEngine)
    }

    #[test]
    fn global_avgpool_layer_round_trip() {
        let mut l = GlobalAvgPool2d::new();
        let x = Tensor::ones(&[2, 3, 4, 4]);
        let y = l.forward(&x, &engines()).unwrap();
        assert_eq!(y.shape(), &[2, 3]);
        assert_eq!(y.data(), &[1.0; 6]);
        let dx = l.backward(&Tensor::ones(&[2, 3]), &engines()).unwrap();
        assert_eq!(dx.shape(), &[2, 3, 4, 4]);
        assert!((dx.sum() - 6.0).abs() < 1e-5);
    }

    #[test]
    fn dropout_preserves_expectation_and_masks_gradient() {
        let mut d = Dropout::new(0.5, 42);
        let x = Tensor::ones(&[1, 10_000]);
        let y = d.forward(&x, &engines()).unwrap();
        // Inverted dropout: E[y] = x.
        assert!((y.mean() - 1.0).abs() < 0.05, "mean = {}", y.mean());
        // Backward uses the same mask.
        let g = d.backward(&Tensor::ones(&[1, 10_000]), &engines()).unwrap();
        for (a, b) in y.data().iter().zip(g.data()) {
            assert_eq!(a == &0.0, b == &0.0);
        }
    }

    #[test]
    fn dropout_inference_is_identity() {
        let mut d = Dropout::new(0.9, 1);
        d.set_training(false);
        let x = Tensor::ones(&[4, 4]);
        assert_eq!(d.forward(&x, &engines()).unwrap(), x);
    }

    #[test]
    #[should_panic(expected = "p must be in [0, 1)")]
    fn dropout_rejects_bad_p() {
        Dropout::new(1.0, 0);
    }
}
