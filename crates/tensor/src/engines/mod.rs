//! Pluggable GEMM engines modelling different hardware arithmetic.
//!
//! Every engine computes `C = A · B` for rank-2 tensors `A: (m, k)` and
//! `B: (k, n)`, differing only in the arithmetic applied to operands and
//! accumulations. Swapping engines inside the training loop is exactly
//! how the paper models accuracy (§V-A): "we swapped each GEMM operation
//! with our customized BFP versions".

mod analog;
mod bfp;
mod exact;
mod formats;
mod rns_bfp;
mod stochastic;

pub use analog::AnalogFxpEngine;
pub use bfp::BfpEngine;
pub use exact::ExactEngine;
pub use formats::{Bf16Engine, Hfp8Engine, IntEngine};
pub use rns_bfp::RnsBfpEngine;
pub use stochastic::StochasticBfpEngine;

use crate::parallel::{ParallelGemm, TileConfig};
use crate::{Result, Tensor, TensorError};

/// A matrix-multiplication backend.
///
/// Implementors are `Send + Sync` so training loops can share them across
/// threads, and any engine can be lifted onto the tiled multi-threaded
/// execution layer with [`GemmEngine::parallel`]:
///
/// ```
/// use mirage_tensor::{Tensor, GemmEngine, engines::ExactEngine};
///
/// let a = Tensor::full(&[64, 48], 0.25);
/// let b = Tensor::full(&[48, 64], -2.0);
/// let tiled = ExactEngine.parallel(); // auto tile + thread heuristic
/// assert_eq!(
///     tiled.gemm(&a, &b)?.data(),
///     ExactEngine.gemm(&a, &b)?.data(), // bit-identical to serial
/// );
/// # Ok::<(), mirage_tensor::TensorError>(())
/// ```
pub trait GemmEngine: Send + Sync {
    /// Short human-readable name (used in experiment tables).
    fn name(&self) -> &'static str;

    /// Computes `A (m×k) · B (k×n) -> C (m×n)`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::RankMismatch`] unless both operands are
    /// rank-2, and [`TensorError::DimMismatch`] when inner dimensions
    /// differ. Engines may propagate their own arithmetic errors.
    fn gemm(&self, a: &Tensor, b: &Tensor) -> Result<Tensor>;

    /// Whether each output element depends only on its own row of `A`
    /// and column of `B`, so that partitioning the output over row bands
    /// and column tiles reproduces the serial result **bit-exactly**.
    ///
    /// Defaults to `false` — the conservative choice: a new engine is
    /// never tiled until its author audits the quantization state and
    /// opts in, so [`ParallelGemm`] can at worst lose parallelism, never
    /// silently change results. Override to `true` only when all
    /// quantization state is per-row (`A`) / per-column (`B`) /
    /// per-element; whole-matrix state (analog ADC full-scale) or
    /// absolute-position state (stochastic rounding seeds) must stay
    /// `false`.
    fn tile_invariant(&self) -> bool {
        false
    }

    /// Lifts the engine onto the tiled multi-threaded driver with the
    /// automatic tile/thread heuristic ([`TileConfig::auto`]).
    fn parallel(self) -> ParallelGemm<Self>
    where
        Self: Sized,
    {
        ParallelGemm::auto(self)
    }

    /// Lifts the engine onto the tiled multi-threaded driver with an
    /// explicit [`TileConfig`].
    fn parallel_with(self, config: TileConfig) -> ParallelGemm<Self>
    where
        Self: Sized,
    {
        ParallelGemm::new(self, config)
    }
}

impl<E: GemmEngine + ?Sized> GemmEngine for std::sync::Arc<E> {
    fn name(&self) -> &'static str {
        (**self).name()
    }

    fn gemm(&self, a: &Tensor, b: &Tensor) -> Result<Tensor> {
        (**self).gemm(a, b)
    }

    fn tile_invariant(&self) -> bool {
        (**self).tile_invariant()
    }
}

impl<E: GemmEngine + ?Sized> GemmEngine for Box<E> {
    fn name(&self) -> &'static str {
        (**self).name()
    }

    fn gemm(&self, a: &Tensor, b: &Tensor) -> Result<Tensor> {
        (**self).gemm(a, b)
    }

    fn tile_invariant(&self) -> bool {
        (**self).tile_invariant()
    }
}

/// Validates GEMM operand shapes, returning `(m, k, n)`.
pub(crate) fn gemm_dims(a: &Tensor, b: &Tensor) -> Result<(usize, usize, usize)> {
    for t in [a, b] {
        if t.rank() != 2 {
            return Err(TensorError::RankMismatch {
                expected: 2,
                actual: t.rank(),
            });
        }
    }
    let (m, k) = (a.shape()[0], a.shape()[1]);
    let (k2, n) = (b.shape()[0], b.shape()[1]);
    if k != k2 {
        return Err(TensorError::DimMismatch { left: k, right: k2 });
    }
    Ok((m, k, n))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dims_validation() {
        let a = Tensor::zeros(&[2, 3]);
        let b = Tensor::zeros(&[3, 4]);
        assert_eq!(gemm_dims(&a, &b).unwrap(), (2, 3, 4));
        let c = Tensor::zeros(&[4, 4]);
        assert!(matches!(
            gemm_dims(&a, &c),
            Err(TensorError::DimMismatch { left: 3, right: 4 })
        ));
        let d = Tensor::zeros(&[2]);
        assert!(matches!(
            gemm_dims(&d, &b),
            Err(TensorError::RankMismatch { .. })
        ));
    }

    #[test]
    fn engines_are_object_safe() {
        fn boxed(e: Box<dyn GemmEngine>) -> &'static str {
            e.name()
        }
        assert_eq!(boxed(Box::new(ExactEngine)), "fp32");
    }

    #[test]
    fn tile_invariance_defaults_to_false() {
        // New engines must audit their quantization state and opt in;
        // the driver never tiles an engine that hasn't.
        struct Unaudited;
        impl GemmEngine for Unaudited {
            fn name(&self) -> &'static str {
                "unaudited"
            }
            fn gemm(&self, a: &Tensor, b: &Tensor) -> Result<Tensor> {
                ExactEngine.gemm(a, b)
            }
        }
        assert!(!Unaudited.tile_invariant());
        // Audited engines opt in, and smart pointers delegate.
        assert!(ExactEngine.tile_invariant());
        assert!(Box::new(ExactEngine).tile_invariant());
        assert!(std::sync::Arc::new(ExactEngine).tile_invariant());
    }
}
