//! The Fig. 2 dataflow, step by step.
//!
//! [`TiledMvm`] executes one tiled-MVM exactly as the paper's Fig. 2
//! draws it — ① tiling, ② FP→BFP, ③ forward conversion, ④ weight
//! programming, ⑤ analog modular MVM, ⑥ ADC read-out, ⑦ reverse
//! conversion, ⑧ exponent recombination, ⑨ partial-output accumulation
//! — and records a [`StepTrace`] so users can inspect what each stage
//! produced. The numeric result is bit-identical to
//! [`crate::PhotonicGemmEngine`]; this type trades speed for
//! observability.

use mirage_arch::MirageConfig;
use mirage_bfp::{BfpBlock, BfpConfig};
use mirage_photonics::RnsMmvmu;
use mirage_tensor::{Result, Tensor, TensorError};

/// Counters describing one full tiled-MVM execution.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StepTrace {
    /// ① Number of (row-tile × k-group) stationary tiles formed.
    pub tiles: usize,
    /// ② FP→BFP group quantizations performed.
    pub bfp_conversions: usize,
    /// ③ Values forward-converted to residues.
    pub forward_conversions: usize,
    /// ④ Phase-shifter programming events (one per tile per modulus).
    pub weight_programmings: usize,
    /// ⑤ Analog modular MVMs executed (per modulus channel).
    pub modular_mvms: usize,
    /// ⑥/⑦ Output residues read and reverse-converted.
    pub reverse_conversions: usize,
    /// ⑨ FP32 read-accumulate-write operations on partial outputs.
    pub accumulations: usize,
}

/// An observable executor for one MVM `y = W·x` on the Mirage
/// dataflow.
///
/// ```
/// use mirage_core::dataflow::TiledMvm;
/// use mirage_arch::MirageConfig;
/// use mirage_tensor::Tensor;
///
/// let mvm = TiledMvm::new(&MirageConfig::default());
/// let w = Tensor::ones(&[40, 20]);
/// let x = Tensor::ones(&[20]);
/// let (y, trace) = mvm.execute(&w, &x)?;
/// assert_eq!(y.len(), 40);
/// assert!((y.data()[0] - 20.0).abs() < 0.5);
/// // 40 rows over 32-row tiles x ceil(20/16) k-groups = 2 x 2 tiles.
/// assert_eq!(trace.tiles, 4);
/// # Ok::<(), mirage_tensor::TensorError>(())
/// ```
#[derive(Debug, Clone)]
pub struct TiledMvm {
    bfp: BfpConfig,
    unit: RnsMmvmu,
    rows: usize,
    g: usize,
    n_moduli: usize,
}

impl TiledMvm {
    /// Builds the executor for a configuration.
    pub fn new(cfg: &MirageConfig) -> Self {
        TiledMvm {
            bfp: BfpConfig::new(cfg.bm, cfg.g).expect("validated by MirageConfig"),
            unit: RnsMmvmu::new(&cfg.moduli, cfg.rows, cfg.g, &cfg.photonics),
            rows: cfg.rows,
            g: cfg.g,
            n_moduli: cfg.moduli.len(),
        }
    }

    /// Executes `y = W(m×k) · x(k)` through all Fig. 2 steps, returning
    /// the output vector and the step trace.
    ///
    /// # Errors
    ///
    /// Shape errors for non-matrix `w` / mismatched `x`.
    pub fn execute(&self, w: &Tensor, x: &Tensor) -> Result<(Tensor, StepTrace)> {
        if w.rank() != 2 || x.rank() != 1 {
            return Err(TensorError::RankMismatch {
                expected: 2,
                actual: w.rank(),
            });
        }
        let (m, k) = (w.shape()[0], w.shape()[1]);
        if x.len() != k {
            return Err(TensorError::DimMismatch {
                left: k,
                right: x.len(),
            });
        }
        let mut trace = StepTrace::default();

        // ① + ② Tile W by (rows x g) and quantize; group x along k.
        let x_groups: Vec<BfpBlock> = x
            .data()
            .chunks(self.g)
            .map(|c| BfpBlock::quantize(c, self.bfp))
            .collect();
        trace.bfp_conversions += x_groups.len();

        let mut y = Tensor::zeros(&[m]);
        for row0 in (0..m).step_by(self.rows) {
            let rows_here = (row0 + self.rows).min(m) - row0;
            for (gi, xg) in x_groups.iter().enumerate() {
                let k0 = gi * self.g;
                let k1 = (k0 + self.g).min(k);
                trace.tiles += 1;

                // ② Quantize this tile's weight rows.
                let w_blocks: Vec<BfpBlock> = (0..rows_here)
                    .map(|r| BfpBlock::quantize(&w.row(row0 + r)[k0..k1], self.bfp))
                    .collect();
                trace.bfp_conversions += w_blocks.len();

                // ③ Forward conversion of the tile + input group.
                trace.forward_conversions += (k1 - k0) * (rows_here + 1);
                // ④ One programming event per modulus channel.
                trace.weight_programmings += self.n_moduli;

                let weight_tile: Vec<Vec<i64>> = w_blocks
                    .iter()
                    .map(|b| b.mantissas().iter().map(|&v| i64::from(v)).collect())
                    .collect();
                let xv: Vec<i64> = xg.mantissas().iter().map(|&v| i64::from(v)).collect();

                // ⑤-⑦ Analog modular MVM, detection, reverse conversion.
                let outs = self
                    .unit
                    .mvm_signed_ideal(&xv, &weight_tile)
                    .map_err(|e| TensorError::InvalidGeometry(e.to_string()))?;
                trace.modular_mvms += self.n_moduli;
                trace.reverse_conversions += rows_here;

                // ⑧ + ⑨ Exponent recombination and accumulation.
                for (r, &integer) in outs.iter().enumerate() {
                    let scale_exp = w_blocks[r].scale_exp() + xg.scale_exp();
                    y.data_mut()[row0 + r] += (integer as f64 * mirage_bfp::pow2(scale_exp)) as f32;
                    trace.accumulations += 1;
                }
            }
        }
        Ok((y, trace))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mirage_tensor::engines::{BfpEngine, GemmEngine};
    use rand::SeedableRng;

    #[test]
    fn matches_bfp_engine() {
        let cfg = MirageConfig::default();
        let mvm = TiledMvm::new(&cfg);
        let mut rng = rand::rngs::StdRng::seed_from_u64(9);
        let w = Tensor::randn(&[50, 40], 1.0, &mut rng);
        let x = Tensor::randn(&[40], 1.0, &mut rng);
        let (y, _) = mvm.execute(&w, &x).unwrap();
        let xm = x.reshape(&[40, 1]).unwrap();
        let want = BfpEngine::new(BfpConfig::mirage_default())
            .gemm(&w, &xm)
            .unwrap();
        assert_eq!(y.data(), want.data());
    }

    #[test]
    fn trace_counters_are_exact() {
        let cfg = MirageConfig::default();
        let mvm = TiledMvm::new(&cfg);
        let w = Tensor::ones(&[64, 32]); // 2 row-tiles x 2 k-groups
        let x = Tensor::ones(&[32]);
        let (_, t) = mvm.execute(&w, &x).unwrap();
        assert_eq!(t.tiles, 4);
        // x: 2 groups; weights: 4 tiles x 32 rows.
        assert_eq!(t.bfp_conversions, 2 + 4 * 32);
        // 3 moduli per tile programming and per analog MVM.
        assert_eq!(t.weight_programmings, 12);
        assert_eq!(t.modular_mvms, 12);
        // Each tile reverse-converts its 32 outputs and accumulates.
        assert_eq!(t.reverse_conversions, 128);
        assert_eq!(t.accumulations, 128);
        // Forward conversions: per tile, 16 values x (32 rows + 1 input).
        assert_eq!(t.forward_conversions, 4 * 16 * 33);
    }

    #[test]
    fn ragged_shapes() {
        let cfg = MirageConfig::default();
        let mvm = TiledMvm::new(&cfg);
        let mut rng = rand::rngs::StdRng::seed_from_u64(10);
        let w = Tensor::randn(&[33, 17], 1.0, &mut rng); // both dims ragged
        let x = Tensor::randn(&[17], 1.0, &mut rng);
        let (y, t) = mvm.execute(&w, &x).unwrap();
        assert_eq!(y.len(), 33);
        assert_eq!(t.tiles, 2 * 2);
        let xm = x.reshape(&[17, 1]).unwrap();
        let want = BfpEngine::new(BfpConfig::mirage_default())
            .gemm(&w, &xm)
            .unwrap();
        assert_eq!(y.data(), want.data());
    }

    #[test]
    fn shape_errors() {
        let mvm = TiledMvm::new(&MirageConfig::default());
        assert!(mvm
            .execute(&Tensor::zeros(&[4]), &Tensor::zeros(&[4]))
            .is_err());
        assert!(mvm
            .execute(&Tensor::zeros(&[4, 4]), &Tensor::zeros(&[5]))
            .is_err());
    }
}
