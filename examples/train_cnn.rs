//! Train a small CNN on synthetic images with Mirage's BFP arithmetic
//! versus FP32 — the accuracy experiment of paper §V-A / Table I at
//! laptop scale.
//!
//! ```sh
//! cargo run --release --example train_cnn
//! ```

use mirage::models::{datasets, small};
use mirage::nn::optim::Sgd;
use mirage::nn::train::{evaluate, train_epoch};
use mirage::nn::Engines;
use mirage::tensor::engines::ExactEngine;
use mirage::Mirage;
use rand::SeedableRng;

fn run(engines: &Engines, label: &str) -> Result<f32, Box<dyn std::error::Error>> {
    let mut rng = rand::rngs::StdRng::seed_from_u64(7);
    let train = datasets::synthetic_images(4, 64, 8, 0.3, 32, 100);
    let test = datasets::synthetic_images(4, 32, 8, 0.3, 32, 200);

    let mut net = small::small_cnn(8, 4, &mut rng);
    let mut opt = Sgd::with_momentum(0.02, 0.9);
    for epoch in 0..12 {
        let stats = train_epoch(&mut net, &train, &mut opt, engines)?;
        if epoch % 4 == 3 {
            println!(
                "  [{label}] epoch {epoch:>2}: loss = {:.3}, train acc = {:.1} %",
                stats.loss,
                stats.accuracy * 100.0
            );
        }
    }
    let acc = evaluate(&mut net, &test, engines)?;
    println!("  [{label}] test accuracy = {:.1} %\n", acc * 100.0);
    Ok(acc)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("Training a small CNN (2 conv + fc) on synthetic 8x8 images\n");

    println!("FP32 baseline:");
    let fp32 = run(&Engines::uniform(ExactEngine), "fp32")?;

    println!("Mirage arithmetic (BFP bm=4, g=16 in fwd+bwd GEMMs):");
    let mirage = Mirage::paper_default();
    let bfp = run(&mirage.training_engines(), "mirage")?;

    println!("FP32  : {:.1} %", fp32 * 100.0);
    println!(
        "Mirage: {:.1} %  (paper claim: comparable to FP32)",
        bfp * 100.0
    );
    if (fp32 - bfp).abs() < 0.08 {
        println!("-> accuracies are comparable, as the paper reports.");
    } else {
        println!(
            "-> accuracy gap {:.1} pp on this run.",
            (fp32 - bfp) * 100.0
        );
    }
    Ok(())
}
