//! Fixture: deliberate panics in (what the test presents as) a serving
//! module. Expected: 4 active `panic-in-serving` findings + 1 waived;
//! the `debug_assert!` and the test-module `unwrap` must stay silent.
//! Never compiled — consumed via `include_str!` by `rules_fire.rs`.

/// Serving entry exercising every banned construct once.
pub fn serve(x: Option<u32>) -> u32 {
    let v = x.unwrap();
    let w = x.expect("value");
    assert!(v > 0);
    if v == 9 {
        panic!("nine");
    }
    debug_assert!(w < 1_000);
    // mirage-lint: allow(panic_ok) -- fixture: demonstrates a reasoned waiver
    let z = x.unwrap();
    v + w + z
}

#[cfg(test)]
mod tests {
    use super::serve;

    #[test]
    fn unwrap_in_tests_is_legal() {
        let v: Option<u32> = Some(3);
        assert_eq!(v.unwrap(), 3);
        assert_eq!(serve(v), 9);
    }
}
