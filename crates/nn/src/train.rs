//! Training-loop helpers.

use crate::engines::Engines;
use crate::loss::{accuracy, softmax_cross_entropy};
use crate::network::Sequential;
use crate::optim::Optimizer;
use crate::Result;
use mirage_tensor::Tensor;

/// One labelled mini-batch.
#[derive(Debug, Clone)]
pub struct Batch {
    /// Input tensor (first dimension is the batch).
    pub inputs: Tensor,
    /// Integer class labels.
    pub labels: Vec<usize>,
}

/// Summary of one training epoch.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EpochStats {
    /// Mean loss over batches.
    pub loss: f32,
    /// Mean training accuracy over batches.
    pub accuracy: f32,
}

/// Trains one epoch of softmax classification over the given batches.
///
/// Each batch runs forward → cross-entropy → backward → optimizer step,
/// with the gradients quantized by the backward engine — the exact loop
/// of the paper's accuracy experiments (§V-A).
///
/// # Errors
///
/// Propagates engine/loss errors, including divergence.
pub fn train_epoch(
    net: &mut Sequential,
    batches: &[Batch],
    optimizer: &mut dyn Optimizer,
    engines: &Engines,
) -> Result<EpochStats> {
    let mut total_loss = 0.0;
    let mut total_acc = 0.0;
    for batch in batches {
        net.zero_grads();
        let logits = net.forward(&batch.inputs, engines)?;
        let (loss, d) = softmax_cross_entropy(&logits, &batch.labels)?;
        total_acc += accuracy(&logits, &batch.labels);
        total_loss += loss;
        net.backward(&d, engines)?;
        optimizer.step(net);
    }
    let n = batches.len().max(1) as f32;
    Ok(EpochStats {
        loss: total_loss / n,
        accuracy: total_acc / n,
    })
}

/// Evaluates classification accuracy without updating weights.
///
/// # Errors
///
/// Propagates engine errors.
pub fn evaluate(net: &mut Sequential, batches: &[Batch], engines: &Engines) -> Result<f32> {
    let mut total = 0.0;
    let mut count = 0usize;
    for batch in batches {
        let logits = net.forward(&batch.inputs, engines)?;
        total += accuracy(&logits, &batch.labels) * batch.labels.len() as f32;
        count += batch.labels.len();
    }
    Ok(if count == 0 {
        0.0
    } else {
        total / count as f32
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::{Dense, Relu};
    use crate::optim::Sgd;
    use mirage_tensor::engines::ExactEngine;
    use rand::SeedableRng;

    /// Two linearly separable blobs.
    fn blob_batches(rng: &mut rand::rngs::StdRng, n_batches: usize, batch: usize) -> Vec<Batch> {
        (0..n_batches)
            .map(|_| {
                let mut data = Vec::with_capacity(batch * 2);
                let mut labels = Vec::with_capacity(batch);
                for i in 0..batch {
                    let label = i % 2;
                    let center = if label == 0 { -1.0 } else { 1.0 };
                    let noise = Tensor::randn(&[2], 0.3, rng);
                    data.push(center + noise.data()[0]);
                    data.push(center + noise.data()[1]);
                    labels.push(label);
                }
                Batch {
                    inputs: Tensor::from_vec(data, &[batch, 2]).unwrap(),
                    labels,
                }
            })
            .collect()
    }

    #[test]
    fn trains_linearly_separable_blobs_to_high_accuracy() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(90);
        let train = blob_batches(&mut rng, 8, 32);
        let test = blob_batches(&mut rng, 2, 32);

        let mut net = Sequential::new();
        net.push(Dense::new(2, 16, &mut rng));
        net.push(Relu::new());
        net.push(Dense::new(16, 2, &mut rng));

        let engines = Engines::uniform(ExactEngine);
        let mut opt = Sgd::with_momentum(0.05, 0.9);
        let mut stats = EpochStats {
            loss: f32::INFINITY,
            accuracy: 0.0,
        };
        for _ in 0..20 {
            stats = train_epoch(&mut net, &train, &mut opt, &engines).unwrap();
        }
        assert!(stats.loss < 0.2, "loss = {}", stats.loss);
        let acc = evaluate(&mut net, &test, &engines).unwrap();
        assert!(acc > 0.95, "test accuracy = {acc}");
    }

    #[test]
    fn empty_batches() {
        let mut net = Sequential::new();
        let engines = Engines::uniform(ExactEngine);
        let mut opt = Sgd::new(0.1);
        let s = train_epoch(&mut net, &[], &mut opt, &engines).unwrap();
        assert_eq!(s.loss, 0.0);
        assert_eq!(evaluate(&mut net, &[], &engines).unwrap(), 0.0);
    }
}
