//! On-chip SRAM model (paper §IV-C, §V-B2).
//!
//! Mirage keeps three 8 MB SRAM arrays (activations, weights,
//! gradients) built from 32 kB banks with ≤ 1 ns access latency. The
//! digital side runs at 1 GHz but the photonic core completes an MVM
//! every 0.1 ns, so each RNS-MMVMU owns **10 interleaved sub-arrays**
//! per SRAM type, triggered with 0.1 ns offsets — every photonic cycle
//! one sub-array begins an access and the aggregate bandwidth matches
//! the core.

use crate::config::MirageConfig;

/// One SRAM array (e.g. the activation store).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SramArray {
    /// Total capacity in bytes (paper: 8 MB).
    pub bytes: usize,
    /// Bank size in bytes (paper: 32 kB).
    pub bank_bytes: usize,
    /// Word width in bytes (FP32 storage: 4).
    pub word_bytes: usize,
    /// Single-bank access latency in seconds (paper: <= 1 ns).
    pub access_latency_s_x1e12: u64,
}

impl SramArray {
    /// The paper's 8 MB / 32 kB-bank array.
    pub fn paper_default() -> Self {
        SramArray {
            bytes: 8 << 20,
            bank_bytes: 32 << 10,
            word_bytes: 4,
            access_latency_s_x1e12: 1000, // 1 ns in picoseconds
        }
    }

    /// Number of banks.
    pub fn banks(&self) -> usize {
        self.bytes / self.bank_bytes
    }

    /// Access latency in seconds.
    pub fn access_latency_s(&self) -> f64 {
        self.access_latency_s_x1e12 as f64 * 1e-12
    }

    /// Words per bank.
    pub fn words_per_bank(&self) -> usize {
        self.bank_bytes / self.word_bytes
    }
}

/// The interleaved SRAM subsystem serving one RNS-MMVMU.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SramSubsystem {
    /// The array geometry.
    pub array: SramArray,
    /// Interleaving factor (paper: 10 sub-arrays at 0.1 ns offsets).
    pub interleave: usize,
    /// Photonic cycle time the subsystem must keep up with.
    pub photonic_cycle_s: f64,
}

impl SramSubsystem {
    /// Builds the subsystem implied by a [`MirageConfig`].
    pub fn from_config(cfg: &MirageConfig) -> Self {
        SramSubsystem {
            array: SramArray {
                bytes: cfg.sram_bytes_per_array,
                ..SramArray::paper_default()
            },
            interleave: cfg.interleave,
            photonic_cycle_s: cfg.cycle_s(),
        }
    }

    /// Whether the interleaving hides the bank latency: an access
    /// starting every photonic cycle completes within
    /// `interleave × cycle` — the §IV-C requirement.
    pub fn keeps_up(&self) -> bool {
        self.interleave as f64 * self.photonic_cycle_s >= self.array.access_latency_s()
    }

    /// Peak word bandwidth (words/s) of the interleaved subsystem:
    /// one access per photonic cycle per interleaved port.
    pub fn peak_words_per_s(&self) -> f64 {
        1.0 / self.photonic_cycle_s
    }

    /// Sustained access rate needed by one RNS-MMVMU per photonic
    /// cycle, in words: `g` input reads plus a read-accumulate-write on
    /// `rows` outputs (Fig. 2 step 9).
    pub fn words_needed_per_cycle(cfg: &MirageConfig) -> usize {
        cfg.g + 2 * cfg.rows
    }

    /// Number of parallel sub-array groups required to sustain the
    /// per-cycle demand (each interleave group supplies one word per
    /// cycle).
    pub fn required_ports(cfg: &MirageConfig) -> usize {
        Self::words_needed_per_cycle(cfg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_geometry() {
        let a = SramArray::paper_default();
        assert_eq!(a.banks(), 256); // 8 MB / 32 kB
        assert_eq!(a.words_per_bank(), 8192);
        assert!((a.access_latency_s() - 1e-9).abs() < 1e-15);
    }

    #[test]
    fn interleaving_matches_photonic_rate() {
        // 10 sub-arrays x 0.1 ns = 1 ns >= the 1 ns bank latency: the
        // paper's interleave factor is exactly the break-even point.
        let s = SramSubsystem::from_config(&MirageConfig::default());
        assert!(s.keeps_up());
        // 9-way interleaving would fall behind.
        let mut slow = s;
        slow.interleave = 9;
        assert!(!slow.keeps_up());
    }

    #[test]
    fn per_cycle_demand() {
        let cfg = MirageConfig::default();
        // 16 input reads + 32 partial reads + 32 writes = 80 words.
        assert_eq!(SramSubsystem::words_needed_per_cycle(&cfg), 80);
        assert_eq!(SramSubsystem::required_ports(&cfg), 80);
    }

    #[test]
    fn bandwidth_is_cycle_limited() {
        let s = SramSubsystem::from_config(&MirageConfig::default());
        assert!((s.peak_words_per_s() - 1e10).abs() / 1e10 < 1e-12);
    }
}
