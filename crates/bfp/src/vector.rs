//! Group-wise quantization of longer vectors.

use crate::block::{BfpBlock, BfpDotProduct};
use crate::config::BfpConfig;
use crate::{BfpError, Result};

/// A vector quantized as consecutive BFP groups of size `g`.
///
/// This is the unit of work Mirage's tiling step produces (paper Fig. 2,
/// step 1-2): each `g`-long chunk of a row becomes one group with its own
/// shared exponent, and a long dot product is the sum of per-group exact
/// dot products accumulated in FP32.
///
/// ```
/// use mirage_bfp::{BfpConfig, BfpVector};
///
/// let cfg = BfpConfig::new(4, 16)?;
/// let xs: Vec<f32> = (0..40).map(|i| (i as f32 * 0.1).cos()).collect();
/// let v = BfpVector::quantize(&xs, cfg);
/// assert_eq!(v.num_groups(), 3); // 16 + 16 + 8
/// assert_eq!(v.len(), 40);
/// # Ok::<(), mirage_bfp::BfpError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct BfpVector {
    groups: Vec<BfpBlock>,
    len: usize,
    config: BfpConfig,
}

impl BfpVector {
    /// Quantizes a slice into groups of the configured size.
    pub fn quantize(values: &[f32], config: BfpConfig) -> Self {
        let groups = values
            .chunks(config.group_size())
            .map(|chunk| BfpBlock::quantize(chunk, config))
            .collect();
        BfpVector {
            groups,
            len: values.len(),
            config,
        }
    }

    /// The quantized groups.
    pub fn groups(&self) -> &[BfpBlock] {
        &self.groups
    }

    /// Number of groups.
    pub fn num_groups(&self) -> usize {
        self.groups.len()
    }

    /// Total element count.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the vector is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The configuration.
    pub fn config(&self) -> BfpConfig {
        self.config
    }

    /// Reconstructs the quantized values.
    pub fn dequantize(&self) -> Vec<f32> {
        let mut out = Vec::with_capacity(self.len);
        for g in &self.groups {
            out.extend(g.dequantize());
        }
        out
    }

    /// Full-length dot product: per-group exact integer dot products
    /// accumulated in `f64` (the FP32-accumulator path of the paper,
    /// Fig. 2 step 9, with extra headroom in simulation).
    ///
    /// # Errors
    ///
    /// Returns [`BfpError::LengthMismatch`] if lengths differ, or
    /// propagates group-level errors.
    pub fn dot(&self, other: &BfpVector) -> Result<f64> {
        if self.len != other.len {
            return Err(BfpError::LengthMismatch {
                left: self.len,
                right: other.len,
            });
        }
        let mut acc = 0.0f64;
        for (a, b) in self.groups.iter().zip(&other.groups) {
            let d: BfpDotProduct = a.dot(b)?;
            acc += d.to_f64();
        }
        Ok(acc)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_partitioning() {
        let cfg = BfpConfig::new(4, 16).unwrap();
        let xs = vec![1.0f32; 33];
        let v = BfpVector::quantize(&xs, cfg);
        assert_eq!(v.num_groups(), 3);
        assert_eq!(v.groups()[2].len(), 1);
        assert_eq!(v.len(), 33);
    }

    #[test]
    fn empty_vector() {
        let cfg = BfpConfig::new(4, 16).unwrap();
        let v = BfpVector::quantize(&[], cfg);
        assert!(v.is_empty());
        assert_eq!(v.num_groups(), 0);
        assert_eq!(v.dot(&v).unwrap(), 0.0);
    }

    #[test]
    fn per_group_exponents_preserve_dynamic_range() {
        // Values spanning a huge range survive because each group gets its
        // own exponent — the reason BFP beats plain fixed point (§II-B).
        let cfg = BfpConfig::new(4, 4).unwrap();
        let xs = [
            1e10f32, 1.5e10, 0.9e10, 1.1e10, 1e-10, 1.5e-10, 0.9e-10, 1.1e-10,
        ];
        let v = BfpVector::quantize(&xs, cfg);
        let back = v.dequantize();
        for (a, b) in xs.iter().zip(&back) {
            let rel = ((a - b) / a).abs();
            assert!(rel < 0.2, "a = {a}, b = {b}");
        }
    }

    #[test]
    fn dot_approximates_float_dot() {
        let cfg = BfpConfig::new(7, 16).unwrap();
        let xs: Vec<f32> = (0..64).map(|i| (i as f32 * 0.21).sin()).collect();
        let ws: Vec<f32> = (0..64).map(|i| (i as f32 * 0.13).cos()).collect();
        let exact: f64 = xs
            .iter()
            .zip(&ws)
            .map(|(a, b)| f64::from(*a) * f64::from(*b))
            .sum();
        let vx = BfpVector::quantize(&xs, cfg);
        let vw = BfpVector::quantize(&ws, cfg);
        let approx = vx.dot(&vw).unwrap();
        assert!((exact - approx).abs() < 0.05 * exact.abs().max(1.0));
    }

    #[test]
    fn dot_length_mismatch() {
        let cfg = BfpConfig::new(4, 16).unwrap();
        let a = BfpVector::quantize(&[1.0; 8], cfg);
        let b = BfpVector::quantize(&[1.0; 9], cfg);
        assert!(matches!(a.dot(&b), Err(BfpError::LengthMismatch { .. })));
    }

    #[test]
    fn round_trip_keeps_quantized_fixed_point() {
        // Quantizing an already-quantized vector is idempotent.
        let cfg = BfpConfig::new(4, 8).unwrap();
        let xs: Vec<f32> = (0..24).map(|i| (i as f32 * 0.7).sin()).collect();
        let once = BfpVector::quantize(&xs, cfg).dequantize();
        let twice = BfpVector::quantize(&once, cfg).dequantize();
        assert_eq!(once, twice);
    }
}
