//! Packed BFP matrices: flat operand layouts for the GEMM hot path.
//!
//! [`crate::BfpBlock`] is the *reference* representation — one heap
//! object per group, convenient for tests and device models, but a
//! `Vec<Vec<BfpBlock>>` of them pointer-chases on every group dot. A
//! [`PackedBfpMatrix`] stores the same quantization in two contiguous
//! buffers:
//!
//! ```text
//! mantissas  (rows × groups_per_row × g) i32, row-major
//!   row 0: [ g0 ........ | g1 ........ | g_last ...0 0 0 ]
//!   row 1: [ g0 ........ | g1 ........ | g_last ...0 0 0 ]
//!                                         ^^^^^ tail zero-padding
//! scale_exps (rows × groups_per_row) i32
//! ```
//!
//! Every group occupies **exactly `g` lanes**; a ragged tail group
//! (`k % g != 0`) is padded with zero mantissae. Padding is exact: a
//! padded lane contributes `0 · w = 0` to the integer dot and zeros
//! never participate in the shared-exponent scan, so every packed group
//! dot is **bit-identical** to [`crate::BfpBlock::dot`] on the unpadded
//! group — the property the proptests pin against the block path.

use crate::block::{exponent_of, sanitize};
use crate::config::{BfpConfig, RoundingMode};
use crate::math::pow2;
use crate::{BfpError, Result};

/// A matrix quantized row-by-row into BFP groups, stored flat.
///
/// Rows run along the reduction dimension: packing the rows of `A` (or
/// of `Bᵀ`) groups exactly like [`crate::BfpBlock`] chunking each row,
/// so the layout serves both GEMM operands.
///
/// ```
/// use mirage_bfp::{BfpBlock, BfpConfig, PackedBfpMatrix};
///
/// let cfg = BfpConfig::new(4, 4)?;
/// let data = [1.0, 0.5, -0.25, 0.0, 2.0, 0.125]; // 2 rows, k = 3
/// let packed = PackedBfpMatrix::quantize_rows(&data, 2, 3, cfg)?;
/// // Groups are padded to g = 4 lanes; values match the block path.
/// let block = BfpBlock::quantize(&data[..3], cfg);
/// assert_eq!(&packed.group_mantissas(0, 0)[..3], block.mantissas());
/// assert_eq!(packed.group_mantissas(0, 0)[3], 0); // exact zero padding
/// assert_eq!(packed.group_scale_exp(0, 0), block.scale_exp());
/// # Ok::<(), mirage_bfp::BfpError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PackedBfpMatrix {
    rows: usize,
    k: usize,
    groups_per_row: usize,
    config: BfpConfig,
    /// `rows * groups_per_row * g` mantissae, tail groups zero-padded.
    mantissas: Vec<i32>,
    /// A narrow copy of [`Self::mantissas`], kept when
    /// `max_mantissa <= i16::MAX` (every `bm <= 15` operating point)
    /// and the shadow is enabled (see
    /// [`PackedBfpMatrix::without_narrow_shadow`]): the flat kernels'
    /// `i16 × i16 → i32` multiply-accumulate maps onto twice-as-wide
    /// SIMD lanes (`pmaddwd` and friends). The `i32` buffer stays
    /// canonical; this is a same-values shadow.
    mantissas_i16: Vec<i16>,
    /// Whether [`Self::mantissas_i16`] is maintained.
    keep_shadow: bool,
    /// `rows * groups_per_row` shared scale exponents.
    scale_exps: Vec<i32>,
}

impl PackedBfpMatrix {
    /// An empty matrix (0 × 0) ready to be filled by
    /// [`PackedBfpMatrix::quantize_rows_into`] — the reusable scratch
    /// for serving loops that quantize a new activation matrix per call.
    pub fn empty(config: BfpConfig) -> Self {
        PackedBfpMatrix {
            rows: 0,
            k: 0,
            groups_per_row: 0,
            config,
            mantissas: Vec::new(),
            mantissas_i16: Vec::new(),
            keep_shadow: true,
            scale_exps: Vec::new(),
        }
    }

    /// Disables the `i16` mantissa shadow for consumers that only read
    /// the canonical `i32` buffer — the RNS forward conversion and the
    /// photonic `i64` widening — so their packing skips the extra pass
    /// and allocation. The BFP flat kernel keeps the shadow (default).
    #[must_use]
    pub fn without_narrow_shadow(mut self) -> Self {
        self.keep_shadow = false;
        self.mantissas_i16 = Vec::new();
        self
    }

    /// Quantizes `rows` rows of `k` elements each (row-major `data`)
    /// into a freshly allocated packed matrix.
    ///
    /// # Errors
    ///
    /// Returns [`BfpError::LengthMismatch`] unless
    /// `data.len() == rows * k`.
    pub fn quantize_rows(data: &[f32], rows: usize, k: usize, config: BfpConfig) -> Result<Self> {
        let mut packed = Self::empty(config);
        packed.quantize_rows_into(data, rows, k)?;
        Ok(packed)
    }

    /// Re-quantizes into this matrix's existing buffers.
    ///
    /// Zero heap allocation once the buffers have grown to the steady
    /// state: the mantissa and exponent vectors are `resize`d in place,
    /// and the quantizer itself never allocates per group — there is no
    /// `sanitized` staging copy (non-finite inputs are remapped on the
    /// fly, and an all-finite group takes a branch-free fast path) and
    /// no per-group `Vec` like the [`crate::BfpBlock`] path builds.
    ///
    /// # Errors
    ///
    /// Returns [`BfpError::LengthMismatch`] unless
    /// `data.len() == rows * k`.
    // mirage-lint: no_alloc
    pub fn quantize_rows_into(&mut self, data: &[f32], rows: usize, k: usize) -> Result<()> {
        if data.len() != rows * k {
            return Err(BfpError::LengthMismatch {
                left: data.len(),
                right: rows * k,
            });
        }
        let g = self.config.group_size();
        let groups_per_row = k.div_ceil(g);
        self.rows = rows;
        self.k = k;
        self.groups_per_row = groups_per_row;
        self.mantissas.clear();
        self.mantissas.resize(rows * groups_per_row * g, 0);
        let narrow = self.keep_shadow && self.config.max_mantissa() <= i64::from(i16::MAX);
        self.mantissas_i16.clear();
        if narrow {
            self.mantissas_i16.resize(rows * groups_per_row * g, 0);
        }
        self.scale_exps.clear();
        self.scale_exps.resize(rows * groups_per_row, 0);

        let quant = GroupQuantizer {
            bm: self.config.mantissa_bits() as i32,
            limit: self.config.max_mantissa() as f64,
            limit_u64: self.config.max_mantissa() as u64,
            rounding: self.config.rounding(),
        };
        for r in 0..rows {
            let row = &data[r * k..(r + 1) * k];
            let m_row = &mut self.mantissas[r * groups_per_row * g..(r + 1) * groups_per_row * g];
            let e_row = &mut self.scale_exps[r * groups_per_row..(r + 1) * groups_per_row];
            // Monomorphize the common group sizes: with a compile-time
            // group length the shared-exponent scan and the mantissa
            // pass both unroll and vectorize.
            match g {
                8 => quantize_row_const::<8>(quant, row, m_row, e_row),
                16 => quantize_row_const::<16>(quant, row, m_row, e_row),
                32 => quantize_row_const::<32>(quant, row, m_row, e_row),
                64 => quantize_row_const::<64>(quant, row, m_row, e_row),
                _ => {
                    for (gi, chunk) in row.chunks(g).enumerate() {
                        quant.quantize_group(chunk, &mut m_row[gi * g..gi * g + g], &mut e_row[gi]);
                    }
                }
            }
        }
        if narrow {
            for (nl, &lane) in self.mantissas_i16.iter_mut().zip(&self.mantissas) {
                *nl = lane as i16;
            }
        }
        Ok(())
    }

    /// Number of quantized rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Logical reduction length `k` (unpadded row width).
    pub fn k(&self) -> usize {
        self.k
    }

    /// Groups per row, `ceil(k / g)`.
    pub fn groups_per_row(&self) -> usize {
        self.groups_per_row
    }

    /// Padded row width, `groups_per_row * g`.
    pub fn padded_k(&self) -> usize {
        self.groups_per_row * self.config.group_size()
    }

    /// The configuration the rows were quantized with.
    pub fn config(&self) -> BfpConfig {
        self.config
    }

    /// The whole flat mantissa buffer (`rows * padded_k`, row-major).
    pub fn mantissas(&self) -> &[i32] {
        &self.mantissas
    }

    /// The narrow `i16` shadow of [`Self::mantissas`] (same layout,
    /// same values), present whenever the operating point's mantissae
    /// fit (`bm <= 15`). Kernels pair it with
    /// [`PackedBfpMatrix::dot_fits_i32`] to run [`group_dot_i16`].
    pub fn mantissas_i16(&self) -> Option<&[i16]> {
        (self.mantissas_i16.len() == self.mantissas.len()).then_some(&self.mantissas_i16[..])
    }

    /// The whole flat scale-exponent buffer (`rows * groups_per_row`).
    pub fn scale_exps(&self) -> &[i32] {
        &self.scale_exps
    }

    /// One padded row of mantissae (`padded_k` lanes).
    pub fn row_mantissas(&self, row: usize) -> &[i32] {
        let w = self.padded_k();
        &self.mantissas[row * w..(row + 1) * w]
    }

    /// One row's scale exponents (`groups_per_row` entries).
    pub fn row_scale_exps(&self, row: usize) -> &[i32] {
        &self.scale_exps[row * self.groups_per_row..(row + 1) * self.groups_per_row]
    }

    /// The `g` (padded) mantissa lanes of group `gi` of `row`.
    pub fn group_mantissas(&self, row: usize, gi: usize) -> &[i32] {
        let g = self.config.group_size();
        let base = (row * self.groups_per_row + gi) * g;
        &self.mantissas[base..base + g]
    }

    /// The unpadded length of group `gi`: `g` except for a ragged tail.
    pub fn group_len(&self, gi: usize) -> usize {
        let g = self.config.group_size();
        (self.k - gi * g).min(g)
    }

    /// The shared scale exponent of group `gi` of `row`.
    pub fn group_scale_exp(&self, row: usize, gi: usize) -> i32 {
        self.scale_exps[row * self.groups_per_row + gi]
    }

    /// Whether every group dot between `self` and `other` fits an `i32`
    /// accumulator: `g · max_mantissa(self) · max_mantissa(other) <=
    /// i32::MAX`. True for every realistic operating point (the paper's
    /// `bm = 4`, `g = 16` peaks at 3600), letting kernels run the
    /// vectorizer-friendly [`group_dot_i32`] instead of widening every
    /// product to `i64`. Both paths produce the same exact integer.
    pub fn dot_fits_i32(&self, other: &PackedBfpMatrix) -> bool {
        let bound = self.config.max_mantissa() as u128
            * other.config.max_mantissa() as u128
            * self.config.group_size() as u128;
        bound <= i32::MAX as u128
    }

    /// The BFP dot product of row `i` of `self` with row `j` of `other`,
    /// accumulated group-by-group in FP32 — the flat-kernel equivalent
    /// of chaining [`crate::BfpBlock::dot`] + `to_f32()` over the rows'
    /// groups, **bit-identical** to that path by the padding invariant.
    ///
    /// The inner loop is a straight-line integer dot over two `&[i32]`
    /// slices (`i32 × i32 → i64` accumulate) with no bounds decisions
    /// left — shape agreement is debug-asserted, callers validate once
    /// per GEMM.
    pub fn dot_rows(&self, i: usize, other: &PackedBfpMatrix, j: usize) -> f32 {
        debug_assert_eq!(self.k, other.k, "packed operand k mismatch");
        debug_assert_eq!(
            self.config.group_size(),
            other.config.group_size(),
            "packed operand group-size mismatch"
        );
        let g = self.config.group_size();
        let fits_i32 = self.dot_fits_i32(other);
        let a_row = self.row_mantissas(i);
        let b_row = other.row_mantissas(j);
        let a_exps = self.row_scale_exps(i);
        let b_exps = other.row_scale_exps(j);
        let mut acc = 0.0f32;
        for gi in 0..self.groups_per_row {
            let base = gi * g;
            let (a_g, b_g) = (&a_row[base..base + g], &b_row[base..base + g]);
            let integer = if fits_i32 {
                group_dot_i32(a_g, b_g)
            } else {
                group_dot(a_g, b_g)
            };
            acc += (integer as f64 * pow2(a_exps[gi] + b_exps[gi])) as f32;
        }
        acc
    }
}

/// The per-group quantization constants, grouped so the monomorphized
/// row quantizers take one argument.
#[derive(Clone, Copy)]
struct GroupQuantizer {
    bm: i32,
    limit: f64,
    limit_u64: u64,
    rounding: RoundingMode,
}

impl GroupQuantizer {
    /// Quantizes one group, writing `chunk.len()` mantissae into
    /// `lanes` (padding lanes are already zero) and the shared exponent
    /// into `exp`. Bit-identical to [`crate::BfpBlock::quantize`]:
    /// same sanitize mapping, same shared-exponent rule, same `f64`
    /// scaling — minus the per-group heap objects.
    #[inline(always)]
    fn quantize_group(self, chunk: &[f32], lanes: &mut [i32], exp: &mut i32) {
        // The all-finite fast path (the overwhelmingly common case):
        // both passes are branchless per lane, so they vectorize. The
        // slow path applies the same `sanitize` mapping as the block
        // quantizer, element by element, with no staging copy.
        if chunk.iter().all(|v| v.is_finite()) {
            // Shared-exponent scan: the max over the raw biased
            // exponent field is the max over `exponent_of` whenever any
            // element is normal (zeros and subnormals both carry a zero
            // field, and every subnormal exponent lies below every
            // normal one), and it is two vector ops per lane. Groups of
            // only zeros/subnormals fall back to the scalar replica —
            // both pinned against the block quantizer by the
            // packed-vs-block proptests.
            let mut max_field = 0u32;
            for &v in chunk {
                max_field = max_field.max(v.to_bits() & 0x7f80_0000);
            }
            if max_field == 0 {
                let max_exp = chunk
                    .iter()
                    .filter(|v| **v != 0.0)
                    .map(|&v| exponent_of(v))
                    .max();
                let Some(e_shared) = max_exp else {
                    // All-zero group: scale_exp = 0, mantissae stay 0.
                    *exp = 0;
                    return;
                };
                let scale_exp = e_shared - self.bm + 1;
                let scale = pow2(-scale_exp);
                *exp = scale_exp;
                for (lane, &v) in lanes.iter_mut().zip(chunk) {
                    let scaled = f64::from(v) * scale;
                    let q = match self.rounding {
                        RoundingMode::Truncate => scaled.trunc(),
                        RoundingMode::RoundNearest => scaled.round(),
                    };
                    *lane = q.clamp(-self.limit, self.limit) as i32;
                }
                return;
            }
            let scale_exp = ((max_field >> 23) as i32 - 127) - self.bm + 1;
            *exp = scale_exp;
            // Mantissa pass as exact integer arithmetic: for a finite
            // `v = ±mant24 · 2^(e-23)`, the legacy `trunc(f64(v) ·
            // 2^-scale_exp)` (every step of which is exact — f32→f64 is
            // lossless, and scaling by a power of two only moves the
            // exponent) equals `±(mant24 >> (scale_exp + 23 - e))`, and
            // `round` equals the half-added shift (ties away from zero
            // in both). The shift is >= 24 - bm >= 1 because the shared
            // exponent is the group max; shifts past 63 are clamped
            // (the result is 0 either way). Branchless per lane, so the
            // whole pass vectorizes.
            let limit = self.limit_u64;
            let round_nearest = self.rounding == RoundingMode::RoundNearest;
            for (lane, &v) in lanes.iter_mut().zip(chunk) {
                let bits = v.to_bits();
                let abs = bits & 0x7fff_ffff;
                let raw = (abs >> 23) as i32;
                // Subnormals have no implicit bit and a fixed exponent.
                let mant24 = u64::from(if raw > 0 {
                    (abs & 0x7f_ffff) | 0x80_0000
                } else {
                    abs
                });
                let e = if raw > 0 { raw - 127 } else { -126 };
                let shift = (scale_exp + 23 - e).clamp(1, 63) as u32;
                let add = if round_nearest {
                    1u64 << (shift - 1)
                } else {
                    0
                };
                let mag = ((mant24 + add) >> shift).min(limit);
                *lane = if bits >> 31 == 1 {
                    -(mag as i32)
                } else {
                    mag as i32
                };
            }
            return;
        }
        let max_exp = chunk
            .iter()
            .map(|&v| sanitize(v))
            .filter(|&v| v != 0.0)
            .map(exponent_of)
            .max();
        let Some(e_shared) = max_exp else {
            *exp = 0;
            return;
        };
        let scale_exp = e_shared - self.bm + 1;
        let scale = pow2(-scale_exp);
        *exp = scale_exp;
        for (lane, &v) in lanes.iter_mut().zip(chunk) {
            let scaled = f64::from(sanitize(v)) * scale;
            let q = match self.rounding {
                RoundingMode::Truncate => scaled.trunc(),
                RoundingMode::RoundNearest => scaled.round(),
            };
            *lane = q.clamp(-self.limit, self.limit) as i32;
        }
    }
}

/// One row's groups with a compile-time group size: full groups get
/// constant-length slices (unrolled scans), only the ragged tail is
/// dynamic.
#[inline(always)]
fn quantize_row_const<const G: usize>(
    quant: GroupQuantizer,
    row: &[f32],
    m_row: &mut [i32],
    e_row: &mut [i32],
) {
    let full = row.len() / G;
    for gi in 0..full {
        quant.quantize_group(
            &row[gi * G..(gi + 1) * G],
            &mut m_row[gi * G..(gi + 1) * G],
            &mut e_row[gi],
        );
    }
    let tail = full * G;
    if tail < row.len() {
        quant.quantize_group(
            &row[tail..],
            &mut m_row[tail..tail + G][..row.len() - tail],
            &mut e_row[full],
        );
    }
}

// The three group-dot kernels below are the innermost loops of every
// packed GEMM: pure integer multiply-accumulate over quantized
// mantissae. Any floating point here would silently break the exact
// BFP arithmetic (paper §IV-B), so the region is machine-checked.
// mirage-lint: region(int_kernel)

/// Exact integer dot of two equal-length mantissa slices with an `i64`
/// accumulator — the general path, safe for every operating point.
// mirage-lint: no_alloc
#[inline]
pub fn group_dot(a: &[i32], b: &[i32]) -> i64 {
    debug_assert_eq!(a.len(), b.len());
    let mut acc = 0i64;
    for (&x, &w) in a.iter().zip(b) {
        acc += i64::from(x) * i64::from(w);
    }
    acc
}

/// [`group_dot`] with an `i32` accumulator: exact **iff** the group's
/// worst-case magnitude fits (`g · max_a · max_b <= i32::MAX`, see
/// [`PackedBfpMatrix::dot_fits_i32`]) — the caller's contract. Narrower
/// arithmetic lets the autovectorizer keep twice as many lanes per
/// register, which is most of the flat kernel's speedup.
// mirage-lint: no_alloc
#[inline]
pub fn group_dot_i32(a: &[i32], b: &[i32]) -> i64 {
    debug_assert_eq!(a.len(), b.len());
    let mut acc = 0i32;
    for (&x, &w) in a.iter().zip(b) {
        acc += x * w;
    }
    i64::from(acc)
}

/// [`group_dot_i32`] over the narrow [`PackedBfpMatrix::mantissas_i16`]
/// shadow: the `i16 × i16 → i32` multiply-accumulate is the SIMD dot
/// idiom (`pmaddwd`), packing twice as many lanes again. Same caller
/// contract as [`group_dot_i32`]; same exact integer result.
// mirage-lint: no_alloc
#[inline]
pub fn group_dot_i16(a: &[i16], b: &[i16]) -> i64 {
    debug_assert_eq!(a.len(), b.len());
    let mut acc = 0i32;
    for (&x, &w) in a.iter().zip(b) {
        acc += i32::from(x) * i32::from(w);
    }
    i64::from(acc)
}

// mirage-lint: end_region(int_kernel)

#[cfg(test)]
mod tests {
    use super::*;
    use crate::BfpBlock;

    fn cfg(bm: u32, g: usize) -> BfpConfig {
        BfpConfig::new(bm, g).unwrap()
    }

    /// Deterministic pseudo-random values, occasionally non-finite.
    fn values(n: usize, seed: u64, specials: bool) -> Vec<f32> {
        let mut state = seed | 1;
        (0..n)
            .map(|_| {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                let v = ((state >> 40) as f32 / 8388608.0) - 1.0;
                if specials {
                    match state % 17 {
                        0 => f32::NAN,
                        1 => f32::INFINITY,
                        2 => f32::NEG_INFINITY,
                        3 => 0.0,
                        _ => v * 1e3,
                    }
                } else {
                    v
                }
            })
            .collect()
    }

    /// Packed groups must match the block path exactly: same mantissae
    /// on the unpadded lanes, zeros on the padding, same exponent.
    fn assert_matches_blocks(data: &[f32], rows: usize, k: usize, config: BfpConfig) {
        let packed = PackedBfpMatrix::quantize_rows(data, rows, k, config).unwrap();
        let g = config.group_size();
        assert_eq!(packed.groups_per_row(), k.div_ceil(g));
        for r in 0..rows {
            let row = &data[r * k..(r + 1) * k];
            for (gi, chunk) in row.chunks(g).enumerate() {
                let block = BfpBlock::quantize(chunk, config);
                let lanes = packed.group_mantissas(r, gi);
                assert_eq!(
                    &lanes[..chunk.len()],
                    block.mantissas(),
                    "row {r} group {gi}"
                );
                assert!(
                    lanes[chunk.len()..].iter().all(|&m| m == 0),
                    "row {r} group {gi}: nonzero padding"
                );
                assert_eq!(
                    packed.group_scale_exp(r, gi),
                    block.scale_exp(),
                    "row {r} group {gi}"
                );
                assert_eq!(packed.group_len(gi), chunk.len());
            }
        }
    }

    #[test]
    fn matches_block_quantizer_on_aligned_and_ragged_shapes() {
        for (rows, k, g) in [(1, 16, 16), (3, 19, 16), (4, 7, 4), (2, 1, 8), (5, 48, 16)] {
            let data = values(rows * k, (rows * 1000 + k) as u64, false);
            assert_matches_blocks(&data, rows, k, cfg(4, g));
            assert_matches_blocks(&data, rows, k, cfg(8, g));
        }
    }

    #[test]
    fn matches_block_quantizer_with_non_finite_inputs() {
        for (rows, k, g) in [(2, 20, 16), (3, 5, 4)] {
            let data = values(rows * k, 99, true);
            assert_matches_blocks(&data, rows, k, cfg(4, g));
        }
    }

    #[test]
    fn subnormal_and_signed_zero_lanes_match_blocks() {
        // The integer mantissa pass has special cases for subnormals
        // (no implicit bit, fixed exponent) and signed zeros; pin all
        // of them against the f64 block path, in both rounding modes
        // and in groups with and without a normal maximum.
        let tiny = f32::from_bits(1);
        let big_sub = f32::from_bits(0x007f_ffff);
        let cases: Vec<Vec<f32>> = vec![
            vec![tiny, 1.0, -0.0, 0.5],
            vec![tiny, -big_sub, 0.0, tiny * 2.0],
            vec![-1.5, big_sub, f32::MIN_POSITIVE, -0.0],
            vec![0.0, -0.0, 0.0, 0.0],
            vec![f32::MAX, tiny, -f32::MAX, 1e-38],
            vec![1.0 + f32::EPSILON, -1.0 - f32::EPSILON, 0.75, 0.25],
        ];
        for vals in &cases {
            for mode in [RoundingMode::Truncate, RoundingMode::RoundNearest] {
                for bm in [1u32, 4, 8, 15, 23] {
                    let config = cfg(bm, 4).with_rounding(mode);
                    assert_matches_blocks(vals, 1, 4, config);
                }
            }
        }
    }

    #[test]
    fn round_nearest_mode_matches_blocks() {
        let config = cfg(4, 8).with_rounding(RoundingMode::RoundNearest);
        let data = values(3 * 13, 7, false);
        assert_matches_blocks(&data, 3, 13, config);
    }

    #[test]
    fn dot_rows_matches_block_dot_chain() {
        let config = cfg(4, 16);
        for k in [1usize, 15, 16, 17, 33, 64] {
            let a = values(2 * k, 11 + k as u64, false);
            let b = values(3 * k, 23 + k as u64, false);
            let pa = PackedBfpMatrix::quantize_rows(&a, 2, k, config).unwrap();
            let pb = PackedBfpMatrix::quantize_rows(&b, 3, k, config).unwrap();
            for i in 0..2 {
                for j in 0..3 {
                    let mut want = 0.0f32;
                    for (ca, cb) in a[i * k..(i + 1) * k]
                        .chunks(16)
                        .zip(b[j * k..(j + 1) * k].chunks(16))
                    {
                        let ba = BfpBlock::quantize(ca, config);
                        let bb = BfpBlock::quantize(cb, config);
                        want += ba.dot(&bb).unwrap().to_f32();
                    }
                    let got = pa.dot_rows(i, &pb, j);
                    assert_eq!(got.to_bits(), want.to_bits(), "k = {k}, ({i}, {j})");
                }
            }
        }
    }

    #[test]
    fn reuse_does_not_reallocate_at_steady_state() {
        let config = cfg(4, 16);
        let data = values(8 * 50, 3, false);
        let mut scratch = PackedBfpMatrix::empty(config);
        scratch.quantize_rows_into(&data, 8, 50).unwrap();
        let mantissa_ptr = scratch.mantissas().as_ptr();
        let exps_ptr = scratch.scale_exps().as_ptr();
        for seed in 0..4 {
            let next = values(8 * 50, seed, false);
            scratch.quantize_rows_into(&next, 8, 50).unwrap();
            assert_eq!(scratch.mantissas().as_ptr(), mantissa_ptr);
            assert_eq!(scratch.scale_exps().as_ptr(), exps_ptr);
        }
        // Shrinking shapes reuse the buffers too.
        scratch.quantize_rows_into(&data[..4 * 50], 4, 50).unwrap();
        assert_eq!(scratch.mantissas().as_ptr(), mantissa_ptr);
        assert_eq!(scratch.rows(), 4);
    }

    #[test]
    fn stale_state_is_fully_overwritten_on_reuse() {
        let config = cfg(4, 16);
        let mut scratch = PackedBfpMatrix::empty(config);
        scratch
            .quantize_rows_into(&values(4 * 33, 5, false), 4, 33)
            .unwrap();
        // Refill with an all-zero matrix: every mantissa and exponent
        // from the previous call must be cleared, including padding.
        scratch.quantize_rows_into(&[0.0; 2 * 20], 2, 20).unwrap();
        assert!(scratch.mantissas().iter().all(|&m| m == 0));
        assert!(scratch.scale_exps().iter().all(|&e| e == 0));
    }

    #[test]
    fn zero_dimension_matrices_are_well_formed() {
        let config = cfg(4, 16);
        let empty_rows = PackedBfpMatrix::quantize_rows(&[], 0, 16, config).unwrap();
        assert_eq!((empty_rows.rows(), empty_rows.groups_per_row()), (0, 1));
        let empty_k = PackedBfpMatrix::quantize_rows(&[], 3, 0, config).unwrap();
        assert_eq!((empty_k.rows(), empty_k.groups_per_row()), (3, 0));
        assert_eq!(empty_k.padded_k(), 0);
        // A k = 0 dot accumulates nothing.
        assert_eq!(empty_k.dot_rows(0, &empty_k, 1), 0.0);
    }

    #[test]
    fn length_mismatch_is_rejected() {
        let err = PackedBfpMatrix::quantize_rows(&[1.0; 5], 2, 3, cfg(4, 4)).unwrap_err();
        assert_eq!(err, BfpError::LengthMismatch { left: 5, right: 6 });
    }
}
