//! # mirage-tensor
//!
//! Tensor substrate for the Mirage reproduction: row-major `f32` tensors,
//! reference GEMM/convolution kernels, and a family of pluggable
//! [`GemmEngine`]s that model the arithmetic of different hardware:
//!
//! - [`engines::ExactEngine`] — FP32 reference (the paper's baseline).
//! - [`engines::BfpEngine`] — Mirage's BFP-quantized GEMM (paper §V-A).
//! - [`engines::RnsBfpEngine`] — the same arithmetic routed bit-exactly
//!   through RNS residues, validating the "no loss in RNS" claim.
//! - [`engines::Bf16Engine`], [`engines::Hfp8Engine`],
//!   [`engines::IntEngine`] — the systolic-array data formats Mirage is
//!   compared against (Table I/II).
//! - [`engines::StochasticBfpEngine`] — FMAC-style BFP with stochastic
//!   rounding (Zhang et al., HPCA 2022).
//! - [`engines::AnalogFxpEngine`] — a *conventional* analog core with
//!   bounded-precision ADCs, reproducing the information loss that
//!   motivates Mirage (paper §II-C).
//! - [`engines::ProtectedRnsBfpEngine`] — the RNS path carrying
//!   redundant residues (RRNS, paper §VI-E): detects, corrects, and
//!   accounts for injected residue errors, bit-identical to the
//!   unprotected path when clean.
//!
//! The [`faults`] module provides the deterministic fault-injection
//! layer ([`FaultInjector`], [`FaultyEngine`]) that corrupts any of
//! these engines under live traffic.
//!
//! Any engine can be lifted onto the tiled multi-threaded execution
//! layer ([`parallel::ParallelGemm`]) with [`GemmEngine::parallel`]; the
//! driver partitions the output over scoped worker threads and is
//! bit-identical to the serial path for tile-invariant engines.
//!
//! ```
//! use mirage_tensor::{Tensor, engines::{ExactEngine, BfpEngine}, GemmEngine};
//! use mirage_bfp::BfpConfig;
//!
//! let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2])?;
//! let b = Tensor::from_vec(vec![0.5, 0.0, 0.0, 0.5], &[2, 2])?;
//! let exact = ExactEngine.gemm(&a, &b)?;
//! let bfp = BfpEngine::new(BfpConfig::new(8, 16)?).gemm(&a, &b)?;
//! assert!(exact.allclose(&bfp, 1e-2));
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]
#![deny(unused_must_use)]

pub mod conv;
pub mod engines;
mod error;
pub mod faults;
pub mod parallel;
pub mod quant;
pub mod scratch;
mod tensor;

pub use engines::{GemmEngine, PreparedRhs};
pub use error::TensorError;
pub use faults::{FaultConfig, FaultCounts, FaultInjector, FaultScope, FaultyEngine};
pub use parallel::{ParallelGemm, TileConfig};
pub use scratch::ActivationScratch;
pub use tensor::Tensor;

/// Result alias for fallible tensor operations.
pub type Result<T> = std::result::Result<T, TensorError>;
