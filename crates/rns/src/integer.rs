//! Multi-residue RNS integers.

use crate::moduli_set::ModuliSet;
use crate::{Result, RnsError};
use std::fmt;

/// An integer represented by its residues over a [`ModuliSet`].
///
/// This is the value type flowing through Mirage's RNS dataflow (paper
/// Fig. 2): each GEMM operand becomes `n` residue matrices, one per
/// modulus. `RnsInteger` implements the ring operations that are exact in
/// RNS (`add`, `sub`, `mul`) and decoding back to binary via the CRT.
///
/// ```
/// use mirage_rns::{ModuliSet, RnsInteger};
///
/// let set = ModuliSet::special_set(5)?;
/// let x = RnsInteger::encode(123, &set)?;
/// let y = RnsInteger::encode(-45, &set)?;
/// assert_eq!(x.add(&y)?.decode_signed(), 78);
/// assert_eq!(x.mul(&y)?.decode_signed(), 123 * -45);
/// # Ok::<(), mirage_rns::RnsError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RnsInteger {
    residues: Vec<u64>,
    set: ModuliSet,
}

impl RnsInteger {
    /// Encodes a signed integer into residues (forward conversion).
    ///
    /// # Errors
    ///
    /// Returns [`RnsError::OutOfRange`] if `value` lies outside the signed
    /// dynamic range `[-ψ, ψ]` of the set.
    pub fn encode(value: i128, set: &ModuliSet) -> Result<Self> {
        let psi = set.psi();
        if value.unsigned_abs() > psi {
            return Err(RnsError::OutOfRange { value, psi });
        }
        Ok(Self::encode_wrapping(value, set))
    }

    /// Encodes a signed integer, wrapping modulo `M` if out of range.
    ///
    /// Useful for tests that deliberately overflow the RNS range.
    pub fn encode_wrapping(value: i128, set: &ModuliSet) -> Self {
        let residues = set.moduli().iter().map(|m| m.reduce_i128(value)).collect();
        RnsInteger {
            residues,
            set: set.clone(),
        }
    }

    /// Builds an RNS integer directly from residues.
    ///
    /// # Errors
    ///
    /// - [`RnsError::LengthMismatch`] if `residues.len() != set.len()`.
    /// - [`RnsError::UnreducedResidue`] if any residue is not reduced.
    pub fn from_residues(residues: Vec<u64>, set: &ModuliSet) -> Result<Self> {
        if residues.len() != set.len() {
            return Err(RnsError::LengthMismatch {
                left: residues.len(),
                right: set.len(),
            });
        }
        for (&r, m) in residues.iter().zip(set.moduli()) {
            if r >= m.value() {
                return Err(RnsError::UnreducedResidue {
                    value: r,
                    modulus: m.value(),
                });
            }
        }
        Ok(RnsInteger {
            residues,
            set: set.clone(),
        })
    }

    /// The zero element of the set.
    pub fn zero(set: &ModuliSet) -> Self {
        RnsInteger {
            residues: vec![0; set.len()],
            set: set.clone(),
        }
    }

    /// The residues, ordered like the set's moduli.
    pub fn residues(&self) -> &[u64] {
        &self.residues
    }

    /// The moduli set this value belongs to.
    pub fn set(&self) -> &ModuliSet {
        &self.set
    }

    /// Decodes to the canonical unsigned value in `[0, M)` using the
    /// Chinese Remainder Theorem (paper Eq. 5).
    pub fn decode_unsigned(&self) -> u128 {
        let set = &self.set;
        let big_m = set.dynamic_range();
        let mut acc: u128 = 0;
        for (&r, m) in self.residues.iter().zip(set.moduli()) {
            let mi = big_m / u128::from(m.value());
            // T_i = (M_i)^-1 mod m_i; exists because moduli are co-prime.
            let mi_mod = m.reduce_u128(mi);
            let ti = m
                .inverse(mi_mod)
                .expect("M_i is invertible for co-prime moduli");
            // term = r * T_i mod m_i, then * M_i; summed mod M.
            let term = u128::from(m.mul(r, ti)) * mi % big_m;
            acc = (acc + term) % big_m;
        }
        acc
    }

    /// Decodes to the symmetric signed value in `[-ψ, ψ]`.
    pub fn decode_signed(&self) -> i128 {
        let v = self.decode_unsigned();
        let set = &self.set;
        if v > set.psi() {
            v as i128 - set.dynamic_range() as i128
        } else {
            v as i128
        }
    }

    /// Residue-wise addition.
    ///
    /// # Errors
    ///
    /// Returns [`RnsError::SetMismatch`] if the sets differ.
    pub fn add(&self, rhs: &RnsInteger) -> Result<RnsInteger> {
        self.zip_with(rhs, |m, a, b| m.add(a, b))
    }

    /// Residue-wise subtraction.
    ///
    /// # Errors
    ///
    /// Returns [`RnsError::SetMismatch`] if the sets differ.
    pub fn sub(&self, rhs: &RnsInteger) -> Result<RnsInteger> {
        self.zip_with(rhs, |m, a, b| m.sub(a, b))
    }

    /// Residue-wise multiplication.
    ///
    /// # Errors
    ///
    /// Returns [`RnsError::SetMismatch`] if the sets differ.
    pub fn mul(&self, rhs: &RnsInteger) -> Result<RnsInteger> {
        self.zip_with(rhs, |m, a, b| m.mul(a, b))
    }

    /// Negation.
    pub fn neg(&self) -> RnsInteger {
        let residues = self
            .residues
            .iter()
            .zip(self.set.moduli())
            .map(|(&r, m)| m.neg(r))
            .collect();
        RnsInteger {
            residues,
            set: self.set.clone(),
        }
    }

    /// Multiply-accumulate over vectors: `|Σ_j xs_j * ws_j|_M`.
    ///
    /// This mirrors the per-modulus MDPU dot product (paper Eq. 12) across
    /// all moduli at once.
    ///
    /// # Errors
    ///
    /// - [`RnsError::LengthMismatch`] for differing vector lengths.
    /// - [`RnsError::SetMismatch`] if any operand uses a different set.
    pub fn dot(xs: &[RnsInteger], ws: &[RnsInteger]) -> Result<RnsInteger> {
        if xs.len() != ws.len() {
            return Err(RnsError::LengthMismatch {
                left: xs.len(),
                right: ws.len(),
            });
        }
        let set = match xs.first() {
            Some(x) => x.set.clone(),
            None => return Err(RnsError::EmptySet),
        };
        let mut acc = RnsInteger::zero(&set);
        for (x, w) in xs.iter().zip(ws) {
            acc = acc.add(&x.mul(w)?)?;
        }
        Ok(acc)
    }

    fn zip_with(
        &self,
        rhs: &RnsInteger,
        f: impl Fn(crate::Modulus, u64, u64) -> u64,
    ) -> Result<RnsInteger> {
        if self.set != rhs.set {
            return Err(RnsError::SetMismatch);
        }
        let residues = self
            .residues
            .iter()
            .zip(&rhs.residues)
            .zip(self.set.moduli())
            .map(|((&a, &b), &m)| f(m, a, b))
            .collect();
        Ok(RnsInteger {
            residues,
            set: self.set.clone(),
        })
    }
}

impl fmt::Display for RnsInteger {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, r) in self.residues.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{r}")?;
        }
        write!(f, ") over {}", self.set)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn set() -> ModuliSet {
        ModuliSet::special_set(5).unwrap()
    }

    #[test]
    fn encode_decode_round_trip_signed() {
        let s = set();
        for v in [-16367i128, -1234, -1, 0, 1, 999, 16367] {
            let x = RnsInteger::encode(v, &s).unwrap();
            assert_eq!(x.decode_signed(), v, "v = {v}");
        }
    }

    #[test]
    fn encode_rejects_out_of_range() {
        let s = set(); // psi = 16367
        assert!(RnsInteger::encode(16368, &s).is_err());
        assert!(RnsInteger::encode(-16368, &s).is_err());
        assert!(RnsInteger::encode(16367, &s).is_ok());
    }

    #[test]
    fn wrapping_encode_wraps_mod_m() {
        let s = set(); // M = 32736
        let x = RnsInteger::encode_wrapping(32736 + 5, &s);
        assert_eq!(x.decode_unsigned(), 5);
    }

    #[test]
    fn ring_homomorphism() {
        let s = set();
        let pairs = [(100i128, 7i128), (-100, 7), (121, -121), (-50, -60)];
        for (a, b) in pairs {
            let x = RnsInteger::encode(a, &s).unwrap();
            let y = RnsInteger::encode(b, &s).unwrap();
            assert_eq!(x.add(&y).unwrap().decode_signed(), a + b);
            assert_eq!(x.sub(&y).unwrap().decode_signed(), a - b);
            assert_eq!(x.mul(&y).unwrap().decode_signed(), a * b);
            assert_eq!(x.neg().decode_signed(), -a);
        }
    }

    #[test]
    fn from_residues_validates() {
        let s = set();
        assert!(RnsInteger::from_residues(vec![0, 0], &s).is_err());
        assert!(RnsInteger::from_residues(vec![31, 0, 0], &s).is_err());
        let x = RnsInteger::from_residues(vec![30, 31, 32], &s).unwrap();
        assert_eq!(x.residues(), &[30, 31, 32]);
    }

    #[test]
    fn set_mismatch_detected() {
        let s5 = ModuliSet::special_set(5).unwrap();
        let s6 = ModuliSet::special_set(6).unwrap();
        let x = RnsInteger::encode(1, &s5).unwrap();
        let y = RnsInteger::encode(1, &s6).unwrap();
        assert_eq!(x.add(&y).unwrap_err(), RnsError::SetMismatch);
    }

    #[test]
    fn dot_product_matches_integer_dot() {
        let s = set();
        // bm = 4 style operands: signed 5-bit mantissae, g = 16.
        let xs_i: Vec<i128> = (0..16).map(|i| (i as i128 % 31) - 15).collect();
        let ws_i: Vec<i128> = (0..16).map(|i| ((i * 3) as i128 % 31) - 15).collect();
        let expected: i128 = xs_i.iter().zip(&ws_i).map(|(a, b)| a * b).sum();
        let xs: Vec<RnsInteger> = xs_i
            .iter()
            .map(|&v| RnsInteger::encode(v, &s).unwrap())
            .collect();
        let ws: Vec<RnsInteger> = ws_i
            .iter()
            .map(|&v| RnsInteger::encode(v, &s).unwrap())
            .collect();
        let d = RnsInteger::dot(&xs, &ws).unwrap();
        assert_eq!(d.decode_signed(), expected);
    }

    #[test]
    fn dot_empty_is_error() {
        assert_eq!(RnsInteger::dot(&[], &[]).unwrap_err(), RnsError::EmptySet);
    }

    #[test]
    fn zero_is_additive_identity() {
        let s = set();
        let x = RnsInteger::encode(-777, &s).unwrap();
        let z = RnsInteger::zero(&s);
        assert_eq!(x.add(&z).unwrap(), x);
    }

    #[test]
    fn display_shows_residues() {
        let s = ModuliSet::special_set(3).unwrap();
        let x = RnsInteger::encode(10, &s).unwrap();
        assert_eq!(x.to_string(), "(3, 2, 1) over {7, 8, 9}");
    }
}
