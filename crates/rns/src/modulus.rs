//! Validated modulus values.

use crate::{Result, RnsError};
use std::fmt;

/// A single RNS modulus.
///
/// A modulus is a positive integer `m >= 2`. Residues for this modulus lie
/// in `[0, m)`. In Mirage the modulus determines both the DAC/ADC bit
/// precision (`⌈log2 m⌉`, paper Fig. 2 steps 4 and 6) and the number of
/// phase levels the photonic core must resolve (paper §V-B1).
///
/// ```
/// use mirage_rns::Modulus;
///
/// let m = Modulus::new(33)?;
/// assert_eq!(m.bits(), 6);
/// assert_eq!(m.reduce_i128(-1), 32);
/// # Ok::<(), mirage_rns::RnsError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Modulus {
    value: u64,
    /// `⌊2^64 / value⌋`, precomputed once so hot-path reductions replace
    /// the hardware divide with a multiply-high and one conditional
    /// subtraction ([`Modulus::fast_rem`]).
    magic: u64,
}

impl Modulus {
    /// Creates a modulus.
    ///
    /// # Errors
    ///
    /// Returns [`RnsError::InvalidModulus`] if `m < 2`.
    pub fn new(m: u64) -> Result<Self> {
        if m < 2 {
            return Err(RnsError::InvalidModulus(m));
        }
        Ok(Modulus {
            value: m,
            magic: (((u128::from(u64::MAX)) + 1) / u128::from(m)) as u64,
        })
    }

    /// The raw modulus value.
    #[inline]
    pub fn value(self) -> u64 {
        self.value
    }

    /// `x mod m` by reciprocal multiplication — exact for **every**
    /// `u64` input, no divide instruction.
    ///
    /// With `magic = ⌊2^64 / m⌋`, the estimate `q = ⌊x·magic / 2^64⌋`
    /// satisfies `⌊x/m⌋ - 1 <= q <= ⌊x/m⌋` (the deficit is
    /// `x·(2^64 mod m) / (m·2^64) < 1`), so `x - q·m < 2m` and a single
    /// conditional subtraction finishes the reduction.
    #[inline]
    pub fn fast_rem(self, x: u64) -> u64 {
        let q = ((u128::from(x) * u128::from(self.magic)) >> 64) as u64;
        let r = x - q * self.value;
        if r >= self.value {
            r - self.value
        } else {
            r
        }
    }

    /// Number of bits needed to represent a residue: `⌈log2 m⌉`.
    ///
    /// This is the precision of the DACs and ADCs serving this modulus's
    /// MMVMU in Mirage.
    #[inline]
    pub fn bits(self) -> u32 {
        // ceil(log2(m)) == number of bits of (m - 1) for m >= 2.
        64 - (self.value - 1).leading_zeros()
    }

    /// Reduces an unsigned 128-bit value modulo this modulus.
    #[inline]
    pub fn reduce_u128(self, v: u128) -> u64 {
        match u64::try_from(v) {
            Ok(x) => self.fast_rem(x),
            Err(_) => (v % u128::from(self.value)) as u64,
        }
    }

    /// Reduces a signed 128-bit value into `[0, m)` (mathematical modulo).
    #[inline]
    pub fn reduce_i128(self, v: i128) -> u64 {
        // Forward conversion reduces every mantissa of every operand, so
        // the common magnitude-fits-u64 case takes the divide-free path.
        if let Ok(x) = u64::try_from(v.unsigned_abs()) {
            let r = self.fast_rem(x);
            return if v >= 0 { r } else { self.neg(r) };
        }
        let m = i128::from(self.value);
        let r = v.rem_euclid(m);
        r as u64
    }

    /// Modular addition of two already-reduced residues.
    #[inline]
    pub fn add(self, a: u64, b: u64) -> u64 {
        debug_assert!(a < self.value && b < self.value);
        let s = a + b;
        if s >= self.value {
            s - self.value
        } else {
            s
        }
    }

    /// Modular subtraction of two already-reduced residues.
    #[inline]
    pub fn sub(self, a: u64, b: u64) -> u64 {
        debug_assert!(a < self.value && b < self.value);
        if a >= b {
            a - b
        } else {
            a + self.value - b
        }
    }

    /// Modular multiplication of two already-reduced residues.
    #[inline]
    pub fn mul(self, a: u64, b: u64) -> u64 {
        debug_assert!(a < self.value && b < self.value);
        // Residues below 2^32 multiply within u64 and reduce divide-free.
        if self.value <= 1 << 32 {
            return self.fast_rem(a * b);
        }
        (u128::from(a) * u128::from(b) % u128::from(self.value)) as u64
    }

    /// Modular negation of an already-reduced residue.
    #[inline]
    pub fn neg(self, a: u64) -> u64 {
        debug_assert!(a < self.value);
        if a == 0 {
            0
        } else {
            self.value - a
        }
    }

    /// Maps a residue in `[0, m)` to the symmetric signed representation
    /// `[-⌊(m-1)/2⌋, ⌈(m-1)/2⌉]` used when operands are centered around
    /// zero (paper §IV-A1).
    #[inline]
    pub fn to_signed(self, a: u64) -> i64 {
        debug_assert!(a < self.value);
        // Positives occupy [0, ⌈(m-1)/2⌉]; anything above wraps negative.
        if a > self.value / 2 {
            -((self.value - a) as i64)
        } else {
            a as i64
        }
    }

    /// Multiplicative inverse modulo this modulus, if it exists.
    ///
    /// Returns `None` when `gcd(a, m) != 1`.
    pub fn inverse(self, a: u64) -> Option<u64> {
        let (g, x, _) = extended_gcd(i128::from(a), i128::from(self.value));
        if g != 1 {
            return None;
        }
        Some(self.reduce_i128(x))
    }

    /// Whether this modulus is co-prime with another.
    pub fn is_coprime_with(self, other: Modulus) -> bool {
        gcd(self.value, other.value) == 1
    }
}

impl fmt::Display for Modulus {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.value)
    }
}

impl From<Modulus> for u64 {
    fn from(m: Modulus) -> u64 {
        m.value
    }
}

impl TryFrom<u64> for Modulus {
    type Error = RnsError;

    fn try_from(v: u64) -> Result<Self> {
        Modulus::new(v)
    }
}

/// Greatest common divisor (Euclid).
pub fn gcd(mut a: u64, mut b: u64) -> u64 {
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a
}

/// Extended Euclid: returns `(g, x, y)` with `a*x + b*y == g == gcd(a, b)`.
pub fn extended_gcd(a: i128, b: i128) -> (i128, i128, i128) {
    if b == 0 {
        (a, 1, 0)
    } else {
        let (g, x, y) = extended_gcd(b, a % b);
        (g, y, x - (a / b) * y)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_trivial_moduli() {
        assert_eq!(Modulus::new(0), Err(RnsError::InvalidModulus(0)));
        assert_eq!(Modulus::new(1), Err(RnsError::InvalidModulus(1)));
        assert!(Modulus::new(2).is_ok());
    }

    #[test]
    fn bits_matches_ceil_log2() {
        let cases = [
            (2, 1),
            (3, 2),
            (4, 2),
            (5, 3),
            (31, 5),
            (32, 5),
            (33, 6),
            (1024, 10),
        ];
        for (m, b) in cases {
            assert_eq!(Modulus::new(m).unwrap().bits(), b, "m = {m}");
        }
    }

    #[test]
    fn fast_rem_is_exact_everywhere() {
        // Exhaustive boundary sweeps: small x, x around multiples of m,
        // and the u64 extremes, for moduli of every flavour.
        for m in [
            2u64,
            3,
            7,
            31,
            32,
            33,
            255,
            1 << 20,
            (1 << 31) - 1,
            u64::MAX,
        ] {
            let modulus = Modulus::new(m).unwrap();
            let mut probes: Vec<u64> = (0..200).collect();
            for q in [1u64, 2, 1000, u64::MAX / m] {
                let base = m.saturating_mul(q);
                for d in 0..3 {
                    probes.push(base.saturating_sub(d));
                    probes.push(base.saturating_add(d));
                }
            }
            probes.extend([u64::MAX, u64::MAX - 1, u64::MAX / 2]);
            for x in probes {
                assert_eq!(modulus.fast_rem(x), x % m, "m = {m}, x = {x}");
            }
        }
    }

    #[test]
    fn reduce_signed_wraps_like_math_mod() {
        let m = Modulus::new(7).unwrap();
        assert_eq!(m.reduce_i128(-1), 6);
        assert_eq!(m.reduce_i128(-7), 0);
        assert_eq!(m.reduce_i128(-8), 6);
        assert_eq!(m.reduce_i128(13), 6);
    }

    #[test]
    fn add_sub_mul_neg_consistency() {
        let m = Modulus::new(31).unwrap();
        for a in 0..31 {
            for b in 0..31 {
                assert_eq!(m.add(a, b), (a + b) % 31);
                assert_eq!(m.sub(a, b), ((a as i64 - b as i64).rem_euclid(31)) as u64);
                assert_eq!(m.mul(a, b), (a * b) % 31);
            }
            assert_eq!(m.add(a, m.neg(a)), 0);
        }
    }

    #[test]
    fn signed_mapping_round_trips_odd_modulus() {
        // m = 7: residues 0..=3 are 0..=3, residues 4..=6 are -3..=-1.
        let m = Modulus::new(7).unwrap();
        assert_eq!(m.to_signed(0), 0);
        assert_eq!(m.to_signed(3), 3);
        assert_eq!(m.to_signed(4), -3);
        assert_eq!(m.to_signed(6), -1);
    }

    #[test]
    fn signed_mapping_even_modulus() {
        // m = 8: ⌊7/2⌋ = 3 negatives (-1..-3) plus ⌈7/2⌉ = 4 at residue 4.
        let m = Modulus::new(8).unwrap();
        assert_eq!(m.to_signed(4), 4);
        assert_eq!(m.to_signed(5), -3);
        assert_eq!(m.to_signed(7), -1);
    }

    #[test]
    fn inverse_exists_iff_coprime() {
        let m = Modulus::new(32).unwrap();
        assert_eq!(m.inverse(2), None);
        let inv3 = m.inverse(3).unwrap();
        assert_eq!(m.mul(3, inv3), 1);

        let m31 = Modulus::new(31).unwrap();
        for a in 1..31 {
            let inv = m31.inverse(a).unwrap();
            assert_eq!(m31.mul(a, inv), 1);
        }
    }

    #[test]
    fn coprimality() {
        let a = Modulus::new(31).unwrap();
        let b = Modulus::new(32).unwrap();
        let c = Modulus::new(33).unwrap();
        let d = Modulus::new(62).unwrap();
        assert!(a.is_coprime_with(b));
        assert!(b.is_coprime_with(c));
        assert!(a.is_coprime_with(c));
        assert!(!a.is_coprime_with(d));
    }

    #[test]
    fn extended_gcd_bezout_identity() {
        for (a, b) in [(240i128, 46i128), (17, 31), (0, 5), (12, 18)] {
            let (g, x, y) = extended_gcd(a, b);
            assert_eq!(a * x + b * y, g);
        }
    }
}
