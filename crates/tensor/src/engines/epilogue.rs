//! Fused GEMM epilogues: the cheap elementwise tails of a layer (bias
//! add, residual add, ReLU) applied in **one pass** over the output
//! buffer right after the matmul, instead of separate whole-activation
//! sweeps.
//!
//! Compiled serving plans use this to collapse `dense → relu` step
//! pairs into a single `dense+relu` step: the GEMM writes the output
//! block and the epilogue touches each element exactly once while the
//! block is still cache-hot.
//!
//! Fusion is bit-identical to the unfused step sequence by
//! construction: every epilogue operation is elementwise, applied in
//! the same fixed order the separate steps would run (bias, then
//! residual, then ReLU), using the same scalar expressions (`+` and
//! `f32::max(0.0)`). Only the traversal is fused, never the arithmetic.
//!
//! This module is on mirage-lint's `SERVING_MODULES` list: it must stay
//! panic-free (no `unwrap`/`expect`/indexing that can panic on request
//! data) because it runs inside the serving hot loop.

use crate::{Result, TensorError};

/// A descriptor of the elementwise work fused onto the tail of one
/// GEMM: optional per-column bias, optional residual summand (same
/// shape as the output), optional ReLU. Order is fixed — bias, then
/// residual, then ReLU — matching the step order a compiled plan would
/// otherwise execute.
#[derive(Debug, Clone, Copy, Default)]
pub struct Epilogue<'a> {
    bias: Option<&'a [f32]>,
    residual: Option<&'a [f32]>,
    relu: bool,
}

impl<'a> Epilogue<'a> {
    /// The empty epilogue: applying it is a no-op.
    pub fn none() -> Self {
        Self::default()
    }

    /// Adds a per-column bias (length must equal the GEMM's `n`).
    pub fn with_bias(mut self, bias: &'a [f32]) -> Self {
        self.bias = Some(bias);
        self
    }

    /// Adds an elementwise residual summand (length must equal the
    /// GEMM's `m * n`).
    pub fn with_residual(mut self, residual: &'a [f32]) -> Self {
        self.residual = Some(residual);
        self
    }

    /// Applies `v.max(0.0)` after bias/residual — the exact expression
    /// an unfused ReLU step evaluates.
    pub fn with_relu(mut self) -> Self {
        self.relu = true;
        self
    }

    /// Whether this epilogue performs any work at all.
    pub fn is_empty(&self) -> bool {
        self.bias.is_none() && self.residual.is_none() && !self.relu
    }

    /// The per-column bias, if any — read by engines that fold the
    /// epilogue into their GEMM kernel's output write (the accumulator
    /// is in registers, so the fold costs zero extra passes and is
    /// bit-identical to [`Epilogue::apply`] because an `f32` store
    /// round-trips exactly).
    pub fn bias(&self) -> Option<&'a [f32]> {
        self.bias
    }

    /// The residual summand, if any (see [`Epilogue::bias`]).
    pub fn residual(&self) -> Option<&'a [f32]> {
        self.residual
    }

    /// Whether a trailing ReLU is requested (see [`Epilogue::bias`]).
    pub fn relu(&self) -> bool {
        self.relu
    }

    /// Applies the epilogue in place over a row-major `rows × cols`
    /// output buffer: per element, bias add, then residual add, then
    /// ReLU — one traversal, same arithmetic and order as the separate
    /// passes, hence bit-identical to them.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::DimMismatch`] when `out`, the bias, or
    /// the residual disagree with `rows × cols` — never panics, this
    /// runs on the serving path.
    pub fn apply(&self, out: &mut [f32], rows: usize, cols: usize) -> Result<()> {
        let len = rows.checked_mul(cols).ok_or(TensorError::DimMismatch {
            left: rows,
            right: cols,
        })?;
        if out.len() != len {
            return Err(TensorError::DimMismatch {
                left: out.len(),
                right: len,
            });
        }
        if let Some(bias) = self.bias {
            if bias.len() != cols {
                return Err(TensorError::DimMismatch {
                    left: bias.len(),
                    right: cols,
                });
            }
        }
        if let Some(residual) = self.residual {
            if residual.len() != len {
                return Err(TensorError::DimMismatch {
                    left: residual.len(),
                    right: len,
                });
            }
        }
        // Specialized per-combination loops: the hot serving cases
        // (ReLU-only, bias[+ReLU]) run branch-free inner loops the
        // compiler can vectorize; zips make every access bounds-free.
        // Each arm applies the identical scalar expressions in the
        // identical bias → residual → ReLU order.
        match (self.bias, self.residual, self.relu) {
            (None, None, false) => {}
            (None, None, true) => {
                for v in out.iter_mut() {
                    *v = v.max(0.0);
                }
            }
            (Some(bias), None, false) => {
                for row in out.chunks_exact_mut(cols.max(1)) {
                    for (v, &b) in row.iter_mut().zip(bias) {
                        *v += b;
                    }
                }
            }
            (Some(bias), None, true) => {
                for row in out.chunks_exact_mut(cols.max(1)) {
                    for (v, &b) in row.iter_mut().zip(bias) {
                        // Same ops, same order as the unfused pair of
                        // sweeps: add, then `max(0.0)`.
                        *v = (*v + b).max(0.0);
                    }
                }
            }
            (bias, Some(residual), relu) => {
                for (row, rrow) in out
                    .chunks_exact_mut(cols.max(1))
                    .zip(residual.chunks_exact(cols.max(1)))
                {
                    for (c, (v, &r)) in row.iter_mut().zip(rrow).enumerate() {
                        if let Some(bias) = bias {
                            // `bias.len() == cols` was checked above
                            // and `c < cols` by construction.
                            *v += bias.get(c).copied().unwrap_or(0.0);
                        }
                        *v += r;
                        if relu {
                            *v = v.max(0.0);
                        }
                    }
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo(rows: usize, cols: usize) -> Vec<f32> {
        (0..rows * cols).map(|i| (i as f32 - 7.5) * 0.375).collect()
    }

    #[test]
    fn fused_matches_separate_passes_bitwise() {
        let (rows, cols) = (3, 5);
        let bias: Vec<f32> = (0..cols).map(|c| c as f32 * 0.25 - 0.5).collect();
        let residual: Vec<f32> = demo(rows, cols).iter().map(|v| -v * 0.5).collect();

        let mut fused = demo(rows, cols);
        Epilogue::none()
            .with_bias(&bias)
            .with_residual(&residual)
            .with_relu()
            .apply(&mut fused, rows, cols)
            .unwrap();

        // The unfused reference: three separate whole-buffer sweeps.
        let mut separate = demo(rows, cols);
        for r in 0..rows {
            for c in 0..cols {
                separate[r * cols + c] += bias[c];
            }
        }
        for (v, r) in separate.iter_mut().zip(&residual) {
            *v += r;
        }
        for v in separate.iter_mut() {
            *v = v.max(0.0);
        }

        let fused_bits: Vec<u32> = fused.iter().map(|v| v.to_bits()).collect();
        let separate_bits: Vec<u32> = separate.iter().map(|v| v.to_bits()).collect();
        assert_eq!(fused_bits, separate_bits);
    }

    #[test]
    fn empty_epilogue_is_a_noop() {
        let mut out = demo(2, 4);
        let before = out.clone();
        let e = Epilogue::none();
        assert!(e.is_empty());
        e.apply(&mut out, 2, 4).unwrap();
        assert_eq!(out, before);
    }

    #[test]
    fn relu_only_clamps_negatives() {
        let mut out = vec![-1.5f32, 0.0, 2.5, -0.0];
        Epilogue::none().with_relu().apply(&mut out, 1, 4).unwrap();
        assert_eq!(out, vec![0.0, 0.0, 2.5, 0.0]);
    }

    #[test]
    fn shape_mismatches_are_typed_errors() {
        let mut out = demo(2, 3);
        let short_bias = [1.0f32; 2];
        assert!(matches!(
            Epilogue::none()
                .with_bias(&short_bias)
                .apply(&mut out, 2, 3),
            Err(TensorError::DimMismatch { .. })
        ));
        let short_residual = [0.0f32; 5];
        assert!(matches!(
            Epilogue::none()
                .with_residual(&short_residual)
                .apply(&mut out, 2, 3),
            Err(TensorError::DimMismatch { .. })
        ));
        assert!(matches!(
            Epilogue::none().with_relu().apply(&mut out, 2, 4),
            Err(TensorError::DimMismatch { .. })
        ));
    }

    #[test]
    fn zero_size_buffers_are_fine() {
        let mut empty: Vec<f32> = Vec::new();
        Epilogue::none()
            .with_relu()
            .apply(&mut empty, 0, 7)
            .unwrap();
        Epilogue::none()
            .with_relu()
            .apply(&mut empty, 3, 0)
            .unwrap();
    }
}
